//! Full (traditional) transactions over the value-based layout (`val-full`).
//!
//! Because the layout has no version numbers, read validation is by value
//! comparison, made safe in the general case by a NOrec-style commit sequence
//! lock (Dalessandro et al.): writers serialize their write-back phase on a
//! global counter, and readers revalidate whenever the counter moves.  The
//! per-word lock bit is still acquired for every written cell so that
//! `val-full` transactions synchronize correctly with `val-short`
//! transactions and single-location operations on the same cells.

use std::ptr;
use std::sync::atomic::Ordering;

use crate::api::{TxAbort, TxResult};
use crate::word::Word;

use super::{is_locked, ValCell, ValThread, LOCK_BIT};

impl ValThread {
    #[inline]
    fn commit_seq(&self) -> usize {
        self.stm.inner.commit_seq.load(Ordering::Acquire)
    }

    pub(crate) fn do_full_begin(&mut self) {
        debug_assert!(!self.in_tx, "nested full transactions are not supported");
        self.in_tx = true;
        self.read_set.clear();
        self.write_set.clear();
        self.stats.full_starts += 1;
        // Wait for an even (quiescent) sequence number: an odd value means a
        // writer is mid-write-back.
        loop {
            let seq = self.commit_seq();
            if seq & 1 == 0 {
                self.snapshot = seq;
                break;
            }
            std::thread::yield_now();
        }
    }

    pub(crate) fn do_full_rollback(&mut self) {
        self.in_tx = false;
        self.read_set.clear();
        self.write_set.clear();
        self.stats.full_aborts += 1;
    }

    /// Re-checks every read against the current memory contents.
    ///
    /// `own_lock` is the lock word of this thread; cells we have already
    /// locked during commit are validated against the value they held when
    /// the lock was acquired.
    fn validate_by_value(&self, during_commit: bool) -> bool {
        let own_lock = self.lock_word();
        for &(cell_ptr, seen) in &self.read_set {
            // SAFETY: cells are kept alive by the epoch guard held across the
            // atomic block.
            let cell = unsafe { &*cell_ptr };
            let cur = cell.load(Ordering::Acquire);
            if cur == seen {
                continue;
            }
            if during_commit && cur == own_lock {
                // We locked this cell ourselves; compare against the value it
                // held at lock-acquisition time.
                let old = self
                    .write_set
                    .entries()
                    .iter()
                    .find(|e| ptr::eq(e.data.cast::<ValCell>(), cell_ptr))
                    .map(|e| e.old_orec_raw);
                if old == Some(seen) {
                    continue;
                }
            }
            return false;
        }
        true
    }

    /// Brings the snapshot up to date, revalidating the read set by value.
    fn extend_snapshot(&mut self) -> bool {
        loop {
            let seq = self.commit_seq();
            if seq & 1 == 1 {
                std::thread::yield_now();
                continue;
            }
            if !self.validate_by_value(false) {
                return false;
            }
            // Only adopt the snapshot if no writer slipped in while we were
            // validating.
            if self.commit_seq() == seq {
                self.snapshot = seq;
                self.stats.extensions += 1;
                return true;
            }
        }
    }

    pub(crate) fn do_full_read(&mut self, cell: &ValCell) -> TxResult<Word> {
        debug_assert!(self.in_tx);
        self.stats.full_reads += 1;
        let key = (cell as *const ValCell).cast();
        if let Some(v) = self.write_set.lookup(key) {
            return Ok(v);
        }
        loop {
            let value = cell.load(Ordering::Acquire);
            if is_locked(value) {
                // Someone is writing this cell right now.  Wait for the store
                // that releases it rather than aborting immediately.
                std::thread::yield_now();
                continue;
            }
            let seq = self.commit_seq();
            if seq == self.snapshot {
                self.read_set.push((cell as *const ValCell, value));
                return Ok(value);
            }
            // The commit counter moved: revalidate and retry the read under
            // the newer snapshot.
            if !self.extend_snapshot() {
                return Err(TxAbort::Conflict);
            }
        }
    }

    pub(crate) fn do_full_write(&mut self, cell: &ValCell, value: Word) -> TxResult<()> {
        debug_assert!(self.in_tx);
        debug_assert_eq!(
            value & LOCK_BIT,
            0,
            "val-layout values must keep bit 0 clear"
        );
        self.stats.full_writes += 1;
        self.write_set
            .insert((cell as *const ValCell).cast(), ptr::null(), value);
        Ok(())
    }

    fn release_locked(&mut self) {
        for e in self.write_set.entries_mut() {
            if e.locked_here {
                // SAFETY: see `validate_by_value`.
                let cell = unsafe { &*e.data.cast::<ValCell>() };
                cell.store(e.old_orec_raw, Ordering::Release);
                e.locked_here = false;
            }
        }
    }

    pub(crate) fn do_full_commit(&mut self) -> bool {
        debug_assert!(self.in_tx);
        if self.write_set.is_empty() {
            // Read-only: the incremental revalidation performed by the reads
            // guarantees the read set was consistent at `snapshot`.
            self.in_tx = false;
            self.read_set.clear();
            self.stats.full_commits += 1;
            return true;
        }

        // Serialize the write-back phase on the commit sequence lock.
        let seq = loop {
            let seq = self.commit_seq();
            if seq & 1 == 1 {
                std::thread::yield_now();
                continue;
            }
            if self
                .stm
                .inner
                .commit_seq
                .compare_exchange(seq, seq + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                break seq;
            }
        };

        // Acquire the per-word locks so that short transactions and single
        // operations on the same cells observe the commit atomically.
        let lock_word = self.lock_word();
        let n = self.write_set.len();
        let mut ok = true;
        for i in 0..n {
            let cell_ptr = self.write_set.entries()[i].data.cast::<ValCell>();
            // SAFETY: see `validate_by_value`.
            let cell = unsafe { &*cell_ptr };
            let cur = cell.load(Ordering::Acquire);
            if is_locked(cur) || cell.compare_exchange(cur, lock_word).is_err() {
                ok = false;
                break;
            }
            let e = &mut self.write_set.entries_mut()[i];
            e.locked_here = true;
            e.old_orec_raw = cur;
        }

        if ok && !self.validate_by_value(true) {
            ok = false;
        }

        if !ok {
            self.release_locked();
            self.stm
                .inner
                .commit_seq
                .store(seq.wrapping_add(2), Ordering::Release);
            self.do_full_rollback();
            return false;
        }

        // Write back: each store both publishes the new value and releases
        // the per-word lock.
        for e in self.write_set.entries() {
            // SAFETY: see `validate_by_value`.
            let cell = unsafe { &*e.data.cast::<ValCell>() };
            cell.store(e.value, Ordering::Release);
        }
        self.stm.inner.thread_clocks.bump(self.clock_slot);
        self.stm
            .inner
            .commit_seq
            .store(seq.wrapping_add(2), Ordering::Release);

        self.in_tx = false;
        self.read_set.clear();
        self.write_set.clear();
        self.stats.full_commits += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use crate::api::{Stm, StmThread};
    use crate::val::ValStm;
    use crate::word::{decode_int, encode_int};
    use std::sync::Arc;

    #[test]
    fn read_your_own_writes() {
        let stm = ValStm::new();
        let c = stm.new_cell(encode_int(5));
        let mut t = stm.register();
        let out = t.atomic(|tx| {
            tx.write(&c, encode_int(9))?;
            tx.read(&c)
        });
        assert_eq!(out.map(decode_int), Some(9));
        assert_eq!(decode_int(ValStm::peek(&c)), 9);
    }

    #[test]
    fn cancel_discards_updates() {
        let stm = ValStm::new();
        let c = stm.new_cell(encode_int(1));
        let mut t = stm.register();
        let out: Option<()> = t.atomic(|tx| {
            tx.write(&c, encode_int(2))?;
            tx.cancel()
        });
        assert_eq!(out, None);
        assert_eq!(decode_int(ValStm::peek(&c)), 1);
    }

    #[test]
    fn counter_increments_are_not_lost() {
        let stm = Arc::new(ValStm::new());
        let cell = Arc::new(stm.new_cell(encode_int(0)));
        const THREADS: usize = 4;
        const PER_THREAD: usize = 800;
        let mut joins = Vec::new();
        for _ in 0..THREADS {
            let stm = Arc::clone(&stm);
            let cell = Arc::clone(&cell);
            joins.push(std::thread::spawn(move || {
                let mut t = stm.register();
                for _ in 0..PER_THREAD {
                    t.atomic(|tx| {
                        let v = decode_int(tx.read(&cell)?);
                        tx.write(&cell, encode_int(v + 1))?;
                        Ok(())
                    });
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(decode_int(ValStm::peek(&cell)), THREADS * PER_THREAD);
    }

    #[test]
    fn multi_cell_invariant_is_preserved() {
        // Two cells always sum to 1000 under concurrent transfers.
        let stm = Arc::new(ValStm::new());
        let a = Arc::new(stm.new_cell(encode_int(1000)));
        let b = Arc::new(stm.new_cell(encode_int(0)));
        let mut joins = Vec::new();
        for tid in 0..4 {
            let stm = Arc::clone(&stm);
            let a = Arc::clone(&a);
            let b = Arc::clone(&b);
            joins.push(std::thread::spawn(move || {
                let mut t = stm.register();
                for i in 0..1_000 {
                    let amount = (tid + i) % 7;
                    t.atomic(|tx| {
                        let va = decode_int(tx.read(&a)?);
                        let vb = decode_int(tx.read(&b)?);
                        if va >= amount {
                            tx.write(&a, encode_int(va - amount))?;
                            tx.write(&b, encode_int(vb + amount))?;
                        }
                        Ok(())
                    });
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let total = decode_int(ValStm::peek(&a)) + decode_int(ValStm::peek(&b));
        assert_eq!(total, 1000);
    }

    #[test]
    fn read_only_transactions_see_consistent_snapshots() {
        let stm = Arc::new(ValStm::new());
        let a = Arc::new(stm.new_cell(encode_int(500)));
        let b = Arc::new(stm.new_cell(encode_int(500)));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

        let writer = {
            let stm = Arc::clone(&stm);
            let a = Arc::clone(&a);
            let b = Arc::clone(&b);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut t = stm.register();
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    t.atomic(|tx| {
                        let va = decode_int(tx.read(&a)?);
                        let vb = decode_int(tx.read(&b)?);
                        if va > 0 {
                            tx.write(&a, encode_int(va - 1))?;
                            tx.write(&b, encode_int(vb + 1))?;
                        } else {
                            tx.write(&a, encode_int(vb))?;
                            tx.write(&b, encode_int(0))?;
                        }
                        Ok(())
                    });
                }
            })
        };

        let mut t = stm.register();
        for _ in 0..2_000 {
            let sum = t
                .atomic(|tx| {
                    let va = decode_int(tx.read(&a)?);
                    let vb = decode_int(tx.read(&b)?);
                    Ok(va + vb)
                })
                .unwrap();
            assert_eq!(sum, 1000, "opacity violation: torn read-only snapshot");
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        writer.join().unwrap();
    }
}
