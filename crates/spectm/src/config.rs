//! Runtime configuration of an STM instance.
//!
//! The defaults correspond to the paper's BaseTM / SpecTM settings; the other
//! knobs exist for the ablation benchmarks called out in DESIGN.md.

use crate::clock::ClockMode;

/// How short read-write transactions acquire ownership of locations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShortLocking {
    /// Encounter-time locking: the location is locked by the `rw_read` call
    /// itself (the paper's design; removes commit-time read validation).
    #[default]
    Encounter,
    /// Commit-time locking: `rw_read` only records the version and locks are
    /// taken at commit.  Used by the ablation study of Section 4.4.2, which
    /// attributes the high-contention drop-off of `*-short` variants to ETL.
    Commit,
}

/// Write-set representation used by full transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WriteSetKind {
    /// Hash-indexed write set (Spear et al.), the paper's default.
    #[default]
    Hashed,
    /// Plain linear log with linear search on read-after-write.  Ablation.
    Linear,
}

/// Configuration for a [`crate::VersionedStm`] or [`crate::ValStm`] instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Version-clock strategy (`*-g` vs `*-l`).  Ignored by [`crate::ValStm`]
    /// short transactions, which are version-free.
    pub clock: ClockMode,
    /// Number of ownership records in the orec table (orec layout only).
    /// Rounded up to a power of two.
    pub orec_table_size: usize,
    /// Whether the contention manager waits between restarts.
    pub backoff: bool,
    /// Locking discipline for short read-write transactions.
    pub short_locking: ShortLocking,
    /// Write-set representation for full transactions.
    pub write_set: WriteSetKind,
    /// Use per-thread commit counters instead of one shared counter for
    /// value-based full transactions ([`crate::ValStm`] only).
    pub per_thread_commit_counters: bool,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            clock: ClockMode::Global,
            orec_table_size: 1 << 20,
            backoff: true,
            short_locking: ShortLocking::Encounter,
            write_set: WriteSetKind::Hashed,
            per_thread_commit_counters: false,
        }
    }
}

impl Config {
    /// The paper's BaseTM configuration with a global clock.
    pub fn global() -> Self {
        Self::default()
    }

    /// The paper's configuration with per-orec (local) version numbers.
    pub fn local() -> Self {
        Self {
            clock: ClockMode::Local,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_basetm() {
        let c = Config::default();
        assert_eq!(c.clock, ClockMode::Global);
        assert!(c.backoff);
        assert_eq!(c.short_locking, ShortLocking::Encounter);
        assert_eq!(c.write_set, WriteSetKind::Hashed);
    }

    #[test]
    fn local_flips_clock_only() {
        let c = Config::local();
        assert_eq!(c.clock, ClockMode::Local);
        assert_eq!(c.orec_table_size, Config::default().orec_table_size);
    }
}
