//! Meta-data placement strategies for the versioned STM variants.
//!
//! The paper's Figure 3 shows three ways of organizing STM meta-data; this
//! module implements the first two, which share the TL2-style versioned-orec
//! machinery and differ only in *where* the orec lives:
//!
//! * [`OrecTableLayout`] — a global table of ownership records indexed by a
//!   hash of the data address (Figure 3(a)).  Accessing a datum touches two
//!   cache lines and distinct data words may *false-share* an orec.
//! * [`TvarLayout`] — each transactional variable carries its own orec in the
//!   adjacent word, 16-byte aligned so both live on one cache line
//!   (Figure 3(b), following STM-Haskell's `TVar`).
//!
//! The third organization (one lock bit inside the data word, Figure 3(c)) is
//! sufficiently different that it has a dedicated implementation in
//! [`crate::val`].

use std::sync::atomic::AtomicUsize;
#[cfg(test)]
use std::sync::atomic::Ordering;

use crate::orec::Orec;
use crate::word::{addr_of, Word};

/// A meta-data placement strategy: maps transactional cells to orecs.
pub trait Layout: Send + Sync + Sized + 'static {
    /// The per-location cell type exposed to applications.
    type Cell: Send + Sync;

    /// Creates the layout's shared state (`orec_table_size` is only used by
    /// the orec-table layout).
    fn new(orec_table_size: usize) -> Self;

    /// Creates a cell holding `initial`.
    fn new_cell(initial: Word) -> Self::Cell;

    /// The application data word of a cell.
    fn data(cell: &Self::Cell) -> &AtomicUsize;

    /// The ownership record guarding a cell.
    fn orec<'a>(&'a self, cell: &'a Self::Cell) -> &'a Orec;

    /// Short label used in variant names (`"orec"` or `"tvar"`).
    fn label() -> &'static str;
}

// ---------------------------------------------------------------------------
// Orec-table layout
// ---------------------------------------------------------------------------

/// The traditional layout: data words are bare, meta-data lives in a global
/// hash-indexed table of ownership records.
///
/// The table is a packed array of one-word orecs, as in TL2: with on the
/// order of a million slots, padding each to a cache line would waste tens of
/// megabytes for little benefit, and the paper's point about this layout is
/// precisely that *application* accesses touch a second, unrelated cache line.
#[derive(Debug)]
pub struct OrecTableLayout {
    table: Box<[Orec]>,
    mask: usize,
}

/// A bare transactional data word (orec-table layout).
#[derive(Debug)]
#[repr(transparent)]
pub struct OrecCell {
    data: AtomicUsize,
}

impl OrecTableLayout {
    /// Maps a data address to its orec index.
    ///
    /// Fibonacci hashing of the address with the low alignment bits dropped,
    /// as is conventional for word-based STMs.
    #[inline]
    fn index_of(&self, addr: usize) -> usize {
        let h = (addr >> 3).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 16) & self.mask
    }

    /// Number of slots in the table.
    pub fn table_len(&self) -> usize {
        self.table.len()
    }

    /// Returns the orec slot index used for a given cell (exposed so tests
    /// can construct deliberate false-sharing scenarios).
    pub fn slot_of(&self, cell: &OrecCell) -> usize {
        self.index_of(addr_of(&cell.data))
    }
}

impl Layout for OrecTableLayout {
    type Cell = OrecCell;

    fn new(orec_table_size: usize) -> Self {
        let len = orec_table_size.next_power_of_two().max(2);
        let mut table = Vec::with_capacity(len);
        table.resize_with(len, Orec::default);
        Self {
            table: table.into_boxed_slice(),
            mask: len - 1,
        }
    }

    fn new_cell(initial: Word) -> Self::Cell {
        OrecCell {
            data: AtomicUsize::new(initial),
        }
    }

    #[inline]
    fn data(cell: &Self::Cell) -> &AtomicUsize {
        &cell.data
    }

    #[inline]
    fn orec<'a>(&'a self, cell: &'a Self::Cell) -> &'a Orec {
        &self.table[self.index_of(addr_of(&cell.data))]
    }

    fn label() -> &'static str {
        "orec"
    }
}

// ---------------------------------------------------------------------------
// TVar layout
// ---------------------------------------------------------------------------

/// The TVar layout: every cell carries its own orec on the same cache line.
#[derive(Debug, Default)]
pub struct TvarLayout;

/// A transactional variable: one application word plus its ownership record,
/// aligned so that both always share a cache line.
#[derive(Debug)]
#[repr(C, align(16))]
pub struct TvarCell {
    data: AtomicUsize,
    orec: Orec,
}

impl Layout for TvarLayout {
    type Cell = TvarCell;

    fn new(_orec_table_size: usize) -> Self {
        Self
    }

    fn new_cell(initial: Word) -> Self::Cell {
        TvarCell {
            data: AtomicUsize::new(initial),
            orec: Orec::new(),
        }
    }

    #[inline]
    fn data(cell: &Self::Cell) -> &AtomicUsize {
        &cell.data
    }

    #[inline]
    fn orec<'a>(&'a self, cell: &'a Self::Cell) -> &'a Orec {
        &cell.orec
    }

    fn label() -> &'static str {
        "tvar"
    }
}

/// Reads a cell's data word directly (non-transactionally).
#[cfg(test)]
pub(crate) fn peek_data<L: Layout>(cell: &L::Cell) -> Word {
    L::data(cell).load(Ordering::Acquire)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orec_table_size_rounds_to_power_of_two() {
        let l = OrecTableLayout::new(1000);
        assert_eq!(l.table_len(), 1024);
    }

    #[test]
    fn orec_table_maps_deterministically() {
        let l = OrecTableLayout::new(1 << 10);
        let c = OrecTableLayout::new_cell(5);
        let a = l.orec(&c) as *const Orec;
        let b = l.orec(&c) as *const Orec;
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_cells_usually_map_to_distinct_orecs() {
        let l = OrecTableLayout::new(1 << 16);
        let cells: Vec<_> = (0..64).map(OrecTableLayout::new_cell).collect();
        let mut slots: Vec<_> = cells.iter().map(|c| l.slot_of(c)).collect();
        slots.sort_unstable();
        slots.dedup();
        // With a 64Ki-entry table and 64 cells, collisions should be rare.
        assert!(
            slots.len() >= 60,
            "too many orec collisions: {}",
            slots.len()
        );
    }

    #[test]
    fn tvar_cell_is_one_cache_line_and_16_aligned() {
        assert_eq!(std::mem::align_of::<TvarCell>(), 16);
        assert!(std::mem::size_of::<TvarCell>() <= 64);
        let c = TvarLayout::new_cell(9);
        assert_eq!(peek_data::<TvarLayout>(&c), 9);
    }

    #[test]
    fn cell_data_is_readable() {
        let c = OrecTableLayout::new_cell(1234);
        assert_eq!(peek_data::<OrecTableLayout>(&c), 1234);
    }

    #[test]
    fn orec_table_entries_are_one_word() {
        assert_eq!(std::mem::size_of::<Orec>(), std::mem::size_of::<usize>());
    }
}
