//! The versioned-orec STM engine shared by the `orec-*` and `tvar-*` variants.
//!
//! The engine implements BaseTM (the paper's traditional STM: TL2-style
//! versioned ownership records, commit-time locking, invisible reads,
//! deferred updates, timebase extension, hash-based write sets) *and* the
//! specialized short-transaction interface of Section 2.2 over the same
//! meta-data, so short and full transactions interoperate freely.
//!
//! The engine is generic over the [`Layout`], which decides whether orecs
//! live in a global table ([`crate::layout::OrecTableLayout`], the `orec-*`
//! variants) or next to each datum ([`crate::layout::TvarLayout`], the
//! `tvar-*` variants).

mod full;
mod short;
pub(crate) mod writeset;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::api::{Stm, StmThread, TxResult};
use crate::backoff::Backoff;
use crate::clock::{ClockMode, GlobalClock};
use crate::config::Config;
use crate::layout::Layout;
use crate::orec::Orec;
use crate::stats::{Stats, StatsSnapshot};
use crate::word::Word;
use crate::MAX_SHORT;

use writeset::WriteSet;

/// Shared state of a versioned STM instance.
#[derive(Debug)]
pub(crate) struct VersionedInner<L: Layout> {
    pub(crate) layout: L,
    pub(crate) clock: GlobalClock,
    pub(crate) config: Config,
    pub(crate) collector: txepoch::Collector,
    pub(crate) thread_seq: AtomicUsize,
}

/// An STM instance using versioned ownership records.
///
/// Cloning is cheap (the shared state is reference counted); clones refer to
/// the same transactional memory.
#[derive(Debug)]
pub struct VersionedStm<L: Layout> {
    pub(crate) inner: Arc<VersionedInner<L>>,
}

impl<L: Layout> Clone for VersionedStm<L> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// One entry of a short read-write transaction's inline location set.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ShortRwEntry {
    pub(crate) data: *const AtomicUsize,
    pub(crate) orec: *const Orec,
    /// Orec word observed when ownership was acquired (restored on abort).
    pub(crate) old_orec_raw: Word,
    /// Whether this entry acquired the orec (false when an earlier entry of
    /// the same transaction already owns it, e.g. under orec-table sharing).
    pub(crate) locked_here: bool,
}

impl Default for ShortRwEntry {
    fn default() -> Self {
        Self {
            data: std::ptr::null(),
            orec: std::ptr::null(),
            old_orec_raw: 0,
            locked_here: false,
        }
    }
}

/// One entry of a short read-only transaction's inline location set.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ShortRoEntry {
    pub(crate) data: *const AtomicUsize,
    pub(crate) orec: *const Orec,
    /// Version observed by the read.
    pub(crate) version: Word,
    /// Set once the location has been upgraded into the read-write set.
    pub(crate) upgraded: bool,
}

impl Default for ShortRoEntry {
    fn default() -> Self {
        Self {
            data: std::ptr::null(),
            orec: std::ptr::null(),
            version: 0,
            upgraded: false,
        }
    }
}

/// Heap-allocated block whose address identifies the owning thread in locked
/// orecs.  Boxed so the address is stable even though the thread handle
/// itself may move.
#[derive(Debug, Default)]
#[repr(align(64))]
pub(crate) struct Descriptor {
    /// Diagnostic thread id.
    pub(crate) id: usize,
}

/// A per-thread handle onto a [`VersionedStm`].
pub struct VersionedThread<L: Layout> {
    pub(crate) stm: VersionedStm<L>,
    pub(crate) descriptor: Box<Descriptor>,
    pub(crate) epoch: txepoch::LocalHandle,
    pub(crate) backoff: Backoff,
    pub(crate) stats: Stats,

    // ---- full-transaction state ----
    pub(crate) in_tx: bool,
    pub(crate) start_ts: Word,
    pub(crate) read_set: Vec<(*const Orec, Word)>,
    pub(crate) write_set: WriteSet,

    // ---- short-transaction state ----
    pub(crate) rw_entries: [ShortRwEntry; MAX_SHORT],
    pub(crate) rw_count: usize,
    pub(crate) rw_valid: bool,
    pub(crate) ro_entries: [ShortRoEntry; MAX_SHORT],
    pub(crate) ro_count: usize,
    pub(crate) ro_valid: bool,
    pub(crate) ro_start_ts: Word,
}

impl<L: Layout> VersionedThread<L> {
    /// The descriptor address used to mark orecs locked by this thread.
    #[inline]
    pub(crate) fn owner(&self) -> usize {
        &*self.descriptor as *const Descriptor as usize
    }

    #[inline]
    pub(crate) fn clock_mode(&self) -> ClockMode {
        self.stm.inner.config.clock
    }

    #[inline]
    pub(crate) fn layout(&self) -> &L {
        &self.stm.inner.layout
    }

    #[inline]
    pub(crate) fn clock(&self) -> &GlobalClock {
        &self.stm.inner.clock
    }
}

impl<L: Layout> Stm for VersionedStm<L> {
    type Cell = L::Cell;
    type Thread = VersionedThread<L>;

    fn with_config(config: Config) -> Self {
        Self {
            inner: Arc::new(VersionedInner {
                layout: L::new(config.orec_table_size),
                clock: GlobalClock::new(),
                config,
                collector: txepoch::Collector::new(),
                thread_seq: AtomicUsize::new(0),
            }),
        }
    }

    fn config(&self) -> &Config {
        &self.inner.config
    }

    fn register(&self) -> Self::Thread {
        let id = self.inner.thread_seq.fetch_add(1, Ordering::Relaxed);
        VersionedThread {
            stm: self.clone(),
            descriptor: Box::new(Descriptor { id }),
            epoch: self.inner.collector.register(),
            backoff: Backoff::new(id as u64 + 1),
            stats: Stats::new(),
            in_tx: false,
            start_ts: 0,
            read_set: Vec::with_capacity(64),
            write_set: WriteSet::new(self.inner.config.write_set),
            rw_entries: [ShortRwEntry::default(); MAX_SHORT],
            rw_count: 0,
            rw_valid: true,
            ro_entries: [ShortRoEntry::default(); MAX_SHORT],
            ro_count: 0,
            ro_valid: true,
            ro_start_ts: 0,
        }
    }

    fn new_cell(&self, initial: Word) -> Self::Cell {
        L::new_cell(initial)
    }

    fn peek(cell: &Self::Cell) -> Word {
        L::data(cell).load(Ordering::Acquire)
    }

    fn poke(cell: &Self::Cell, value: Word) {
        L::data(cell).store(value, Ordering::Release);
    }

    fn label(&self) -> String {
        let clock = match self.inner.config.clock {
            ClockMode::Global => "g",
            ClockMode::Local => "l",
        };
        format!("{}-{}", L::label(), clock)
    }

    fn collector(&self) -> &txepoch::Collector {
        &self.inner.collector
    }
}

impl<L: Layout> StmThread for VersionedThread<L> {
    type Stm = VersionedStm<L>;

    fn epoch(&self) -> &txepoch::LocalHandle {
        &self.epoch
    }

    fn backoff(&self) -> &Backoff {
        &self.backoff
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn stm(&self) -> &Self::Stm {
        &self.stm
    }

    fn single_read(&mut self, cell: &L::Cell) -> Word {
        self.do_single_read(cell)
    }

    fn single_write(&mut self, cell: &L::Cell, value: Word) {
        self.do_single_write(cell, value);
    }

    fn single_cas(&mut self, cell: &L::Cell, expected: Word, new: Word) -> Word {
        self.do_single_cas(cell, expected, new)
    }

    fn rw_read(&mut self, idx: usize, cell: &L::Cell) -> Word {
        self.do_rw_read(idx, cell)
    }

    fn rw_is_valid(&mut self, n: usize) -> bool {
        self.do_rw_is_valid(n)
    }

    fn rw_commit(&mut self, n: usize, values: &[Word]) -> bool {
        self.do_rw_commit(n, values)
    }

    fn rw_abort(&mut self, n: usize) {
        self.do_rw_abort(n);
    }

    fn ro_read(&mut self, idx: usize, cell: &L::Cell) -> Word {
        self.do_ro_read(idx, cell)
    }

    fn ro_is_valid(&mut self, n: usize) -> bool {
        self.do_ro_is_valid(n)
    }

    fn upgrade_ro_to_rw(&mut self, ro_idx: usize, rw_idx: usize) -> bool {
        self.do_upgrade(ro_idx, rw_idx)
    }

    fn ro_rw_commit(&mut self, n_ro: usize, n_rw: usize, values: &[Word]) -> bool {
        self.do_ro_rw_commit(n_ro, n_rw, values)
    }

    fn full_begin(&mut self) {
        self.do_full_begin();
    }

    fn full_read(&mut self, cell: &L::Cell) -> TxResult<Word> {
        self.do_full_read(cell)
    }

    fn full_write(&mut self, cell: &L::Cell, value: Word) -> TxResult<()> {
        self.do_full_write(cell, value)
    }

    fn full_try_commit(&mut self) -> bool {
        self.do_full_commit()
    }

    fn full_rollback(&mut self) {
        self.do_full_rollback();
    }
}

// SAFETY: the raw pointers held in the thread's transaction records refer to
// cells protected by the epoch collector and are only dereferenced while the
// owning thread is pinned; the handle is still confined to one thread at a
// time (it is not `Sync`), and moving it between threads between transactions
// is sound because no transaction is in flight at that point.  We nevertheless
// do NOT implement `Send`: the embedded `txepoch::LocalHandle` is `!Send`, so
// the compiler already prevents cross-thread moves, which matches the paper's
// "descriptor per thread, allocated at thread start-up" model.
impl<L: Layout> std::fmt::Debug for VersionedThread<L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VersionedThread")
            .field("id", &self.descriptor.id)
            .field("label", &self.stm.label())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{OrecTableLayout, TvarLayout};

    #[test]
    fn labels_follow_paper_convention() {
        let orec_g = VersionedStm::<OrecTableLayout>::with_config(Config::global());
        assert_eq!(orec_g.label(), "orec-g");
        let tvar_l = VersionedStm::<TvarLayout>::with_config(Config::local());
        assert_eq!(tvar_l.label(), "tvar-l");
    }

    #[test]
    fn registration_assigns_distinct_descriptors() {
        let stm = VersionedStm::<TvarLayout>::new();
        let t1 = stm.register();
        let t2 = stm.register();
        assert_ne!(t1.owner(), t2.owner());
        assert_ne!(t1.descriptor.id, t2.descriptor.id);
    }

    #[test]
    fn peek_reads_initial_value() {
        let stm = VersionedStm::<OrecTableLayout>::new();
        let c = stm.new_cell(77);
        assert_eq!(VersionedStm::<OrecTableLayout>::peek(&c), 77);
    }

    #[test]
    fn owner_addresses_are_even() {
        let stm = VersionedStm::<TvarLayout>::new();
        let t = stm.register();
        assert_eq!(t.owner() & 1, 0);
    }
}
