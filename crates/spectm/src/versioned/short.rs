//! Specialized short transactions over versioned orecs (Section 2.2).
//!
//! Short read-write transactions acquire ownership eagerly at the time of the
//! read (encounter-time locking), keep their location set in a fixed-size
//! inline array, defer all stores to the commit call, and therefore need no
//! update log, no read-after-write checks and no commit-time read validation.
//! Short read-only transactions use invisible reads validated against the
//! version clock.  Single-location transactions avoid the transaction record
//! entirely.

use std::sync::atomic::Ordering;

use crate::clock::ClockMode;
use crate::config::ShortLocking;
use crate::layout::Layout;
use crate::orec::Orec;
use crate::word::Word;
use crate::MAX_SHORT;

use super::{ShortRoEntry, ShortRwEntry, VersionedThread};

impl<L: Layout> VersionedThread<L> {
    // ------------------------------------------------------------------
    // Single-location transactions
    // ------------------------------------------------------------------

    pub(crate) fn do_single_read(&mut self, cell: &L::Cell) -> Word {
        self.stats.singles += 1;
        let orec = self.layout().orec(cell);
        let data = L::data(cell);
        loop {
            let o1 = orec.raw(Ordering::Acquire);
            if Orec::is_locked_raw(o1) {
                std::thread::yield_now();
                continue;
            }
            let value = data.load(Ordering::Acquire);
            let o2 = orec.raw(Ordering::Acquire);
            if o1 == o2 {
                return value;
            }
        }
    }

    pub(crate) fn do_single_write(&mut self, cell: &L::Cell, value: Word) {
        self.stats.singles += 1;
        let owner = self.owner();
        let orec = self.layout().orec(cell);
        let data = L::data(cell);
        loop {
            let raw = orec.raw(Ordering::Acquire);
            if Orec::is_locked_raw(raw) || !orec.try_lock(raw, owner) {
                std::thread::yield_now();
                continue;
            }
            data.store(value, Ordering::Release);
            let new_version = match self.clock_mode() {
                ClockMode::Global => self.clock().tick(),
                ClockMode::Local => (raw >> 1) + 1,
            };
            orec.unlock_to_version(owner, new_version);
            return;
        }
    }

    pub(crate) fn do_single_cas(&mut self, cell: &L::Cell, expected: Word, new: Word) -> Word {
        self.stats.singles += 1;
        let owner = self.owner();
        let orec = self.layout().orec(cell);
        let data = L::data(cell);
        loop {
            let raw = orec.raw(Ordering::Acquire);
            if Orec::is_locked_raw(raw) || !orec.try_lock(raw, owner) {
                std::thread::yield_now();
                continue;
            }
            let current = data.load(Ordering::Acquire);
            if current == expected {
                data.store(new, Ordering::Release);
                let new_version = match self.clock_mode() {
                    ClockMode::Global => self.clock().tick(),
                    ClockMode::Local => (raw >> 1) + 1,
                };
                orec.unlock_to_version(owner, new_version);
            } else {
                // No update: restore the original version.
                orec.unlock_to_version(owner, raw >> 1);
            }
            return current;
        }
    }

    // ------------------------------------------------------------------
    // Short read-write transactions
    // ------------------------------------------------------------------

    fn release_rw_locks(&mut self, restore_version: bool) {
        let owner = self.owner();
        for i in 0..self.rw_count {
            let e = self.rw_entries[i];
            if !e.locked_here {
                continue;
            }
            // SAFETY: orecs referenced by in-flight short transactions live in
            // the orec table or in cells protected by the caller's epoch pin.
            let orec = unsafe { &*e.orec };
            let _ = restore_version;
            orec.unlock_to_version(owner, e.old_orec_raw >> 1);
            self.rw_entries[i].locked_here = false;
        }
    }

    pub(crate) fn do_rw_read(&mut self, idx: usize, cell: &L::Cell) -> Word {
        assert!(idx < MAX_SHORT, "short transaction index out of range");
        if idx == 0 {
            self.rw_count = 0;
            self.rw_valid = true;
            self.stats.short_rw_starts += 1;
        }
        // An earlier read of this transaction may have failed to acquire an
        // orec, invalidating the attempt and resetting `rw_count`; later
        // reads of the same attempt must fall through here (the caller only
        // discovers the conflict at `rw_is_valid`).
        if !self.rw_valid {
            return 0;
        }
        debug_assert_eq!(idx, self.rw_count, "short RW indices must be sequential");
        let data = L::data(cell) as *const _;
        let orec_ref = self.layout().orec(cell);
        let orec = orec_ref as *const Orec;

        // Under the orec-table layout two distinct cells may share an orec; if
        // an earlier access of this transaction already owns it, do not try to
        // acquire it again.
        let already_owned = self.rw_entries[..self.rw_count]
            .iter()
            .any(|e| e.orec == orec && e.locked_here);

        match self.stm.inner.config.short_locking {
            ShortLocking::Encounter => {
                if already_owned {
                    self.rw_entries[self.rw_count] = ShortRwEntry {
                        data,
                        orec,
                        old_orec_raw: 0,
                        locked_here: false,
                    };
                } else {
                    let raw = orec_ref.raw(Ordering::Acquire);
                    // Deadlock is avoided conservatively: abort if the lock is
                    // not immediately free (Section 2.4).
                    if Orec::is_locked_raw(raw) || !orec_ref.try_lock(raw, self.owner()) {
                        self.stats.short_rw_conflicts += 1;
                        self.rw_valid = false;
                        self.release_rw_locks(true);
                        self.rw_count = 0;
                        return 0;
                    }
                    self.rw_entries[self.rw_count] = ShortRwEntry {
                        data,
                        orec,
                        old_orec_raw: raw,
                        locked_here: true,
                    };
                }
            }
            ShortLocking::Commit => {
                // Ablation mode: record the observed version; locks are taken
                // by `rw_commit`.
                let raw = orec_ref.raw(Ordering::Acquire);
                if Orec::is_locked_raw(raw) {
                    self.stats.short_rw_conflicts += 1;
                    self.rw_valid = false;
                    self.rw_count = 0;
                    return 0;
                }
                self.rw_entries[self.rw_count] = ShortRwEntry {
                    data,
                    orec,
                    old_orec_raw: raw,
                    locked_here: false,
                };
            }
        }
        self.rw_count += 1;
        // SAFETY: `data` points into `cell`, which the caller keeps alive.
        unsafe { (*data).load(Ordering::Acquire) }
    }

    pub(crate) fn do_rw_is_valid(&mut self, n: usize) -> bool {
        debug_assert!(n <= MAX_SHORT);
        self.rw_valid && self.rw_count >= n
    }

    pub(crate) fn do_rw_commit(&mut self, n: usize, values: &[Word]) -> bool {
        assert!(values.len() >= n, "missing commit values");
        if !self.rw_valid || self.rw_count < n {
            self.release_rw_locks(true);
            self.rw_count = 0;
            return false;
        }
        let owner = self.owner();

        // Commit-time-locking ablation: acquire ownership now, verifying that
        // the versions observed by the reads are still current.
        if self.stm.inner.config.short_locking == ShortLocking::Commit {
            for i in 0..n {
                let e = self.rw_entries[i];
                let already_owned = self.rw_entries[..i]
                    .iter()
                    .any(|p| p.orec == e.orec && p.locked_here);
                if already_owned {
                    continue;
                }
                // SAFETY: see `release_rw_locks`.
                let orec = unsafe { &*e.orec };
                if !orec.try_lock(e.old_orec_raw, owner) {
                    self.stats.short_rw_conflicts += 1;
                    self.rw_valid = false;
                    self.release_rw_locks(true);
                    self.rw_count = 0;
                    return false;
                }
                self.rw_entries[i].locked_here = true;
            }
        }

        let commit_version = match self.clock_mode() {
            ClockMode::Global => Some(self.clock().tick()),
            ClockMode::Local => None,
        };
        for (i, &value) in values.iter().enumerate().take(n) {
            let e = self.rw_entries[i];
            // SAFETY: data words live in cells kept alive by the caller.
            unsafe { (*e.data).store(value, Ordering::Release) };
        }
        for i in 0..n {
            let e = self.rw_entries[i];
            if !e.locked_here {
                continue;
            }
            // SAFETY: see `release_rw_locks`.
            let orec = unsafe { &*e.orec };
            let v = match commit_version {
                Some(v) => v,
                None => (e.old_orec_raw >> 1) + 1,
            };
            orec.unlock_to_version(owner, v);
            self.rw_entries[i].locked_here = false;
        }
        self.rw_count = 0;
        self.stats.short_rw_commits += 1;
        true
    }

    pub(crate) fn do_rw_abort(&mut self, n: usize) {
        debug_assert!(n <= MAX_SHORT);
        self.release_rw_locks(true);
        self.rw_count = 0;
        self.rw_valid = true;
    }

    // ------------------------------------------------------------------
    // Short read-only transactions
    // ------------------------------------------------------------------

    pub(crate) fn do_ro_read(&mut self, idx: usize, cell: &L::Cell) -> Word {
        assert!(idx < MAX_SHORT, "short transaction index out of range");
        if idx == 0 {
            self.ro_count = 0;
            self.ro_valid = true;
            if self.clock_mode() == ClockMode::Global {
                self.ro_start_ts = self.clock().now();
            }
        }
        debug_assert_eq!(idx, self.ro_count, "short RO indices must be sequential");
        let data = L::data(cell);
        let orec_ptr = self.layout().orec(cell) as *const Orec;
        // SAFETY: the orec lives either in the STM's shared table or inside
        // `cell`, both of which outlive this call.
        let orec_ref = unsafe { &*orec_ptr };

        let mut value = 0;
        let mut version = 0;
        let mut consistent = false;
        for _ in 0..64 {
            let o1 = orec_ref.raw(Ordering::Acquire);
            if Orec::is_locked_raw(o1) {
                std::thread::yield_now();
                continue;
            }
            value = data.load(Ordering::Acquire);
            let o2 = orec_ref.raw(Ordering::Acquire);
            if o1 == o2 {
                version = o1 >> 1;
                consistent = true;
                break;
            }
        }
        if !consistent {
            self.ro_valid = false;
        } else {
            match self.clock_mode() {
                ClockMode::Global => {
                    if version > self.ro_start_ts {
                        // Extend the snapshot: the earlier reads must still be
                        // valid at the later timestamp.
                        let now = self.clock().now();
                        if self.validate_ro(self.ro_count) {
                            self.ro_start_ts = now;
                        } else {
                            self.ro_valid = false;
                        }
                    }
                }
                ClockMode::Local => {
                    // Incremental validation of everything read so far.
                    if !self.validate_ro(self.ro_count) {
                        self.ro_valid = false;
                    }
                }
            }
        }
        self.ro_entries[self.ro_count] = ShortRoEntry {
            data,
            orec: orec_ref as *const Orec,
            version,
            upgraded: false,
        };
        self.ro_count += 1;
        value
    }

    /// Re-checks that the first `n` read-only locations still hold the
    /// versions observed when they were read (upgraded ones are owned by this
    /// thread and therefore stable).
    fn validate_ro(&self, n: usize) -> bool {
        let owner = self.owner();
        for e in &self.ro_entries[..n] {
            if e.upgraded {
                // SAFETY: see `release_rw_locks`.
                let orec = unsafe { &*e.orec };
                if !orec.is_locked_by(owner) {
                    return false;
                }
                continue;
            }
            // SAFETY: see `release_rw_locks`.
            let orec = unsafe { &*e.orec };
            let raw = orec.raw(Ordering::Acquire);
            match Orec::version_of(raw) {
                Some(v) if v == e.version => {}
                _ => return false,
            }
        }
        true
    }

    pub(crate) fn do_ro_is_valid(&mut self, n: usize) -> bool {
        debug_assert!(n <= MAX_SHORT);
        let ok = self.ro_valid && self.ro_count >= n && self.validate_ro(n);
        if ok {
            self.stats.short_ro_commits += 1;
        } else {
            self.stats.short_ro_conflicts += 1;
        }
        ok
    }

    // ------------------------------------------------------------------
    // Combined read-only / read-write transactions
    // ------------------------------------------------------------------

    pub(crate) fn do_upgrade(&mut self, ro_idx: usize, rw_idx: usize) -> bool {
        assert!(ro_idx < MAX_SHORT && rw_idx < MAX_SHORT);
        if !self.ro_valid || ro_idx >= self.ro_count {
            return false;
        }
        if rw_idx == 0 {
            self.rw_count = 0;
            self.rw_valid = true;
            self.stats.short_rw_starts += 1;
        }
        debug_assert_eq!(rw_idx, self.rw_count, "upgrade must use the next RW index");
        let entry = self.ro_entries[ro_idx];
        // SAFETY: see `release_rw_locks`.
        let orec = unsafe { &*entry.orec };
        let expected_raw = entry.version << 1;
        if !orec.try_lock(expected_raw, self.owner()) {
            self.stats.short_rw_conflicts += 1;
            self.rw_valid = false;
            self.release_rw_locks(true);
            self.rw_count = 0;
            return false;
        }
        self.rw_entries[rw_idx] = ShortRwEntry {
            data: entry.data,
            orec: entry.orec,
            old_orec_raw: expected_raw,
            locked_here: true,
        };
        self.ro_entries[ro_idx].upgraded = true;
        self.rw_count = rw_idx + 1;
        true
    }

    pub(crate) fn do_ro_rw_commit(&mut self, n_ro: usize, n_rw: usize, values: &[Word]) -> bool {
        assert!(values.len() >= n_rw, "missing commit values");
        if !self.rw_valid || !self.ro_valid || self.rw_count < n_rw || self.ro_count < n_ro {
            self.release_rw_locks(true);
            self.rw_count = 0;
            return false;
        }
        // With every write location already owned, the read-only locations are
        // validated once; this forms the transaction's linearization point.
        if !self.validate_ro(n_ro) {
            self.stats.short_ro_conflicts += 1;
            self.release_rw_locks(true);
            self.rw_count = 0;
            return false;
        }
        self.do_rw_commit(n_rw, values)
    }
}

#[cfg(test)]
mod tests {
    use crate::api::{Stm, StmThread};
    use crate::config::{Config, ShortLocking};
    use crate::layout::{OrecTableLayout, TvarLayout};
    use crate::versioned::VersionedStm;

    #[test]
    fn single_ops_roundtrip() {
        let stm = VersionedStm::<TvarLayout>::new();
        let c = stm.new_cell(5);
        let mut t = stm.register();
        assert_eq!(t.single_read(&c), 5);
        t.single_write(&c, 6);
        assert_eq!(t.single_read(&c), 6);
        assert_eq!(t.single_cas(&c, 6, 7), 6);
        assert_eq!(t.single_read(&c), 7);
        assert_eq!(t.single_cas(&c, 6, 8), 7);
        assert_eq!(t.single_read(&c), 7);
    }

    #[test]
    fn short_rw_commit_updates_all_locations() {
        let stm = VersionedStm::<TvarLayout>::new();
        let a = stm.new_cell(1);
        let b = stm.new_cell(2);
        let mut t = stm.register();
        let va = t.rw_read(0, &a);
        let vb = t.rw_read(1, &b);
        assert!(t.rw_is_valid(2));
        assert!(t.rw_commit(2, &[vb, va]));
        assert_eq!(t.single_read(&a), 2);
        assert_eq!(t.single_read(&b), 1);
    }

    #[test]
    fn short_rw_abort_leaves_data_unchanged() {
        let stm = VersionedStm::<OrecTableLayout>::new();
        let a = stm.new_cell(10);
        let mut t = stm.register();
        let _ = t.rw_read(0, &a);
        assert!(t.rw_is_valid(1));
        t.rw_abort(1);
        assert_eq!(t.single_read(&a), 10);
        // The cell must be usable again immediately.
        let v = t.rw_read(0, &a);
        assert!(t.rw_is_valid(1));
        assert!(t.rw_commit(1, &[v + 1]));
        assert_eq!(t.single_read(&a), 11);
    }

    #[test]
    fn conflicting_short_rw_detected_between_threads() {
        // Thread 1 holds a location; thread 2's rw_read must fail fast.
        let stm = VersionedStm::<TvarLayout>::new();
        let a = stm.new_cell(0);
        let mut t1 = stm.register();
        let mut t2 = stm.register();
        let _ = t1.rw_read(0, &a);
        assert!(t1.rw_is_valid(1));
        let _ = t2.rw_read(0, &a);
        assert!(!t2.rw_is_valid(1));
        t1.rw_abort(1);
        // After the owner releases, the other thread succeeds.
        let v = t2.rw_read(0, &a);
        assert!(t2.rw_is_valid(1));
        assert!(t2.rw_commit(1, &[v + 5]));
        assert_eq!(t1.single_read(&a), 5);
    }

    #[test]
    fn short_ro_validation_detects_concurrent_write() {
        let stm = VersionedStm::<TvarLayout>::new();
        let a = stm.new_cell(1);
        let b = stm.new_cell(2);
        let mut reader = stm.register();
        let mut writer = stm.register();
        let _ = reader.ro_read(0, &a);
        let _ = reader.ro_read(1, &b);
        assert!(reader.ro_is_valid(2));
        writer.single_write(&a, 100);
        assert!(!reader.ro_is_valid(2));
    }

    #[test]
    fn upgrade_then_commit_applies_write() {
        let stm = VersionedStm::<TvarLayout>::new();
        let a = stm.new_cell(7);
        let b = stm.new_cell(8);
        let mut t = stm.register();
        let va = t.ro_read(0, &a);
        let _vb = t.ro_read(1, &b);
        assert!(t.upgrade_ro_to_rw(0, 0));
        assert!(t.ro_rw_commit(2, 1, &[va + 1]));
        assert_eq!(t.single_read(&a), 8);
        assert_eq!(t.single_read(&b), 8);
    }

    #[test]
    fn upgrade_fails_after_concurrent_update() {
        let stm = VersionedStm::<TvarLayout>::new();
        let a = stm.new_cell(7);
        let mut t = stm.register();
        let mut w = stm.register();
        let _ = t.ro_read(0, &a);
        w.single_write(&a, 9);
        assert!(!t.upgrade_ro_to_rw(0, 0));
    }

    #[test]
    fn commit_time_locking_ablation_still_correct() {
        let config = Config {
            short_locking: ShortLocking::Commit,
            ..Config::global()
        };
        let stm = VersionedStm::<TvarLayout>::with_config(config);
        let a = stm.new_cell(1);
        let b = stm.new_cell(2);
        let mut t = stm.register();
        let va = t.rw_read(0, &a);
        let vb = t.rw_read(1, &b);
        assert!(t.rw_is_valid(2));
        assert!(t.rw_commit(2, &[va + vb, vb]));
        assert_eq!(t.single_read(&a), 3);
    }

    #[test]
    fn short_and_full_transactions_interoperate() {
        let stm = VersionedStm::<TvarLayout>::new();
        let a = stm.new_cell(0);
        let mut t = stm.register();
        // Full transaction writes, short transaction reads, and vice versa.
        t.atomic(|tx| {
            tx.write(&a, 41)?;
            Ok(())
        });
        let v = t.rw_read(0, &a);
        assert!(t.rw_is_valid(1));
        assert!(t.rw_commit(1, &[v + 1]));
        let seen = t.atomic(|tx| tx.read(&a));
        assert_eq!(seen, Some(42));
    }

    #[test]
    fn sixteen_threads_of_mixed_short_increments() {
        use std::sync::Arc;
        let stm = Arc::new(VersionedStm::<TvarLayout>::new());
        let cell = Arc::new(stm.new_cell(0));
        const THREADS: usize = 8;
        const PER_THREAD: usize = 800;
        let mut joins = Vec::new();
        for _ in 0..THREADS {
            let stm = Arc::clone(&stm);
            let cell = Arc::clone(&cell);
            joins.push(std::thread::spawn(move || {
                let mut t = stm.register();
                for i in 0..PER_THREAD {
                    if i % 2 == 0 {
                        // Short RW increment.
                        loop {
                            let v = t.rw_read(0, &cell);
                            if !t.rw_is_valid(1) {
                                continue;
                            }
                            if t.rw_commit(1, &[v + 1]) {
                                break;
                            }
                        }
                    } else {
                        // Single-location CAS increment.
                        loop {
                            let v = t.single_read(&cell);
                            if t.single_cas(&cell, v, v + 1) == v {
                                break;
                            }
                        }
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(
            VersionedStm::<TvarLayout>::peek(&cell),
            THREADS * PER_THREAD
        );
    }
}
