//! Full (traditional) transactions over versioned orecs — the paper's BaseTM.
//!
//! The algorithm follows TL2 (Dice et al.) with the timebase extension of
//! Riegel et al. in global-clock mode, and per-orec versions with incremental
//! read-set validation in local-clock mode.  Updates are deferred (buffered in
//! the write set) and orecs are locked only at commit time.

use std::sync::atomic::Ordering;

use crate::api::{TxAbort, TxResult};
use crate::clock::ClockMode;
use crate::layout::Layout;
use crate::orec::Orec;
use crate::word::Word;

use super::VersionedThread;

impl<L: Layout> VersionedThread<L> {
    pub(crate) fn do_full_begin(&mut self) {
        debug_assert!(!self.in_tx, "nested full transactions are not supported");
        self.in_tx = true;
        self.read_set.clear();
        self.write_set.clear();
        self.stats.full_starts += 1;
        if self.clock_mode() == ClockMode::Global {
            self.start_ts = self.clock().now();
        }
    }

    pub(crate) fn do_full_rollback(&mut self) {
        self.in_tx = false;
        self.read_set.clear();
        self.write_set.clear();
        self.stats.full_aborts += 1;
    }

    /// Validates every read-set entry: its orec must be unlocked (or locked by
    /// this thread when `allow_own_locks` is set, as during commit) and still
    /// carry the version observed by the read.
    ///
    /// For an orec this thread locked during commit, the version it held *at
    /// the moment the lock was acquired* is compared instead; without this,
    /// an update committed by another transaction between our read and our
    /// lock acquisition would go undetected (a lost update).
    pub(crate) fn validate_read_set(&self, allow_own_locks: bool) -> bool {
        let owner = self.owner();
        for &(orec_ptr, version) in &self.read_set {
            // SAFETY: orecs outlive the transaction: they live either in the
            // STM's table or inside cells kept alive by the epoch guard held
            // for the duration of the atomic block.
            let orec = unsafe { &*orec_ptr };
            let raw = orec.raw(Ordering::Acquire);
            match Orec::version_of(raw) {
                Some(v) => {
                    if v != version {
                        return false;
                    }
                }
                None => {
                    if !(allow_own_locks && orec.is_locked_by(owner)) {
                        return false;
                    }
                    // Locked by this commit: check the version the orec held
                    // when we acquired it.
                    let locked_version = self
                        .write_set
                        .entries()
                        .iter()
                        .find(|e| e.locked_here && e.orec == orec_ptr)
                        .map(|e| e.old_orec_raw >> 1);
                    if locked_version != Some(version) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Attempts a timebase extension: re-reads the clock and revalidates the
    /// read set so the transaction can continue from a later snapshot.
    fn try_extend(&mut self) -> bool {
        debug_assert_eq!(self.clock_mode(), ClockMode::Global);
        let now = self.clock().now();
        if self.validate_read_set(false) {
            self.start_ts = now;
            self.stats.extensions += 1;
            true
        } else {
            false
        }
    }

    pub(crate) fn do_full_read(&mut self, cell: &L::Cell) -> TxResult<Word> {
        debug_assert!(self.in_tx);
        self.stats.full_reads += 1;
        let data = L::data(cell) as *const _;
        // Read-after-write: the transaction must see its own buffered writes.
        if let Some(v) = self.write_set.lookup(data) {
            return Ok(v);
        }
        let orec_ptr = self.layout().orec(cell) as *const Orec;
        loop {
            // SAFETY: the orec lives either in the STM's shared table or
            // inside `cell`, both of which outlive this call.
            let orec = unsafe { &*orec_ptr };
            let o1 = orec.raw(Ordering::Acquire);
            if Orec::is_locked_raw(o1) {
                // A concurrent commit owns this orec; treat as a conflict and
                // let the contention manager decide how long to wait.
                return Err(TxAbort::Conflict);
            }
            let value = L::data(cell).load(Ordering::Acquire);
            let o2 = orec.raw(Ordering::Acquire);
            if o1 != o2 {
                continue;
            }
            let version = o1 >> 1;
            match self.clock_mode() {
                ClockMode::Global => {
                    if version > self.start_ts && !self.try_extend() {
                        return Err(TxAbort::Conflict);
                    }
                    self.read_set.push((orec as *const Orec, version));
                }
                ClockMode::Local => {
                    self.read_set.push((orec as *const Orec, version));
                    // Without a global clock, opacity requires validating the
                    // whole read set after every read (Section 4.1).
                    if !self.validate_read_set(false) {
                        return Err(TxAbort::Conflict);
                    }
                }
            }
            return Ok(value);
        }
    }

    pub(crate) fn do_full_write(&mut self, cell: &L::Cell, value: Word) -> TxResult<()> {
        debug_assert!(self.in_tx);
        self.stats.full_writes += 1;
        let data = L::data(cell) as *const _;
        let orec = self.layout().orec(cell) as *const Orec;
        self.write_set.insert(data, orec, value);
        Ok(())
    }

    /// Releases commit-time locks, restoring each orec's pre-lock word.
    fn release_acquired(&mut self, owner: usize) {
        for e in self.write_set.entries_mut() {
            if e.locked_here {
                // SAFETY: see `validate_read_set`.
                let orec = unsafe { &*e.orec };
                orec.unlock_to_version(owner, e.old_orec_raw >> 1);
                e.locked_here = false;
            }
        }
    }

    pub(crate) fn do_full_commit(&mut self) -> bool {
        debug_assert!(self.in_tx);
        let owner = self.owner();

        // Read-only transactions: invisible reads stayed consistent during
        // execution (global snapshot or incremental validation), so there is
        // nothing left to do.
        if self.write_set.is_empty() {
            self.in_tx = false;
            self.read_set.clear();
            self.stats.full_commits += 1;
            return true;
        }

        // Phase 1: acquire every write-set orec (commit-time locking).  Two
        // entries may share an orec under the orec-table layout; only the
        // first acquires it.
        let n = self.write_set.len();
        let mut acquired_all = true;
        'acquire: for i in 0..n {
            let (orec_ptr, _data) = {
                let e = &self.write_set.entries()[i];
                (e.orec, e.data)
            };
            let already_owned = self.write_set.entries()[..i]
                .iter()
                .any(|p| p.orec == orec_ptr && p.locked_here);
            if already_owned {
                continue;
            }
            // SAFETY: see `validate_read_set`.
            let orec = unsafe { &*orec_ptr };
            let raw = orec.raw(Ordering::Acquire);
            if Orec::is_locked_raw(raw) || !orec.try_lock(raw, owner) {
                acquired_all = false;
                break 'acquire;
            }
            let e = &mut self.write_set.entries_mut()[i];
            e.locked_here = true;
            e.old_orec_raw = raw;
        }
        if !acquired_all {
            self.release_acquired(owner);
            self.do_full_rollback();
            return false;
        }

        // Phase 2: obtain the commit timestamp and validate the read set.
        let commit_version = match self.clock_mode() {
            ClockMode::Global => Some(self.clock().tick()),
            ClockMode::Local => None,
        };
        if !self.validate_read_set(true) {
            self.release_acquired(owner);
            self.do_full_rollback();
            return false;
        }

        // Phase 3: flush deferred updates to memory.
        for e in self.write_set.entries() {
            // SAFETY: data words live inside cells kept alive by the epoch
            // guard held across the atomic block.
            unsafe { (*e.data).store(e.value, Ordering::Release) };
        }

        // Phase 4: release the orecs with their new versions.
        for i in 0..n {
            let (locked_here, orec_ptr, old_raw) = {
                let e = &self.write_set.entries()[i];
                (e.locked_here, e.orec, e.old_orec_raw)
            };
            if !locked_here {
                continue;
            }
            // SAFETY: see above.
            let orec = unsafe { &*orec_ptr };
            let new_version = match commit_version {
                Some(v) => v,
                None => (old_raw >> 1) + 1,
            };
            orec.unlock_to_version(owner, new_version);
        }

        self.in_tx = false;
        self.read_set.clear();
        self.write_set.clear();
        self.stats.full_commits += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use crate::api::{Stm, StmThread, TxAbort};
    use crate::clock::ClockMode;
    use crate::config::Config;
    use crate::layout::{OrecTableLayout, TvarLayout};
    use crate::versioned::VersionedStm;

    fn configs() -> Vec<Config> {
        vec![Config::global(), Config::local()]
    }

    #[test]
    fn read_your_own_writes() {
        for config in configs() {
            let stm = VersionedStm::<TvarLayout>::with_config(config);
            let cell = stm.new_cell(1);
            let mut t = stm.register();
            let out = t.atomic(|tx| {
                tx.write(&cell, 42)?;
                tx.read(&cell)
            });
            assert_eq!(out, Some(42));
            assert_eq!(VersionedStm::<TvarLayout>::peek(&cell), 42);
        }
    }

    #[test]
    fn aborted_transaction_leaves_memory_untouched() {
        for config in configs() {
            let stm = VersionedStm::<OrecTableLayout>::with_config(config);
            let cell = stm.new_cell(10);
            let mut t = stm.register();
            let out: Option<()> = t.atomic(|tx| {
                tx.write(&cell, 99)?;
                tx.cancel()
            });
            assert_eq!(out, None);
            assert_eq!(VersionedStm::<OrecTableLayout>::peek(&cell), 10);
        }
    }

    #[test]
    fn commit_bumps_versions_and_data() {
        let stm = VersionedStm::<TvarLayout>::with_config(Config::global());
        let a = stm.new_cell(0);
        let b = stm.new_cell(0);
        let mut t = stm.register();
        for i in 1..=10 {
            t.atomic(|tx| {
                tx.write(&a, i)?;
                tx.write(&b, i * 2)?;
                Ok(())
            });
        }
        assert_eq!(VersionedStm::<TvarLayout>::peek(&a), 10);
        assert_eq!(VersionedStm::<TvarLayout>::peek(&b), 20);
        assert_eq!(t.stats().full_commits, 10);
    }

    #[test]
    fn conflicting_writer_causes_retry_not_lost_update() {
        // Two threads increment the same counter transactionally; the final
        // value must equal the number of increments.
        use std::sync::Arc;
        let stm = Arc::new(VersionedStm::<TvarLayout>::with_config(Config::global()));
        let cell = Arc::new(stm.new_cell(0));
        let mut joins = Vec::new();
        const PER_THREAD: usize = 800;
        for _ in 0..4 {
            let stm = Arc::clone(&stm);
            let cell = Arc::clone(&cell);
            joins.push(std::thread::spawn(move || {
                let mut t = stm.register();
                for _ in 0..PER_THREAD {
                    t.atomic(|tx| {
                        let v = tx.read(&cell)?;
                        tx.write(&cell, v + 1)?;
                        Ok(())
                    });
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(VersionedStm::<TvarLayout>::peek(&cell), 4 * PER_THREAD);
    }

    #[test]
    fn explicit_conflict_retries_until_success() {
        let stm = VersionedStm::<OrecTableLayout>::new();
        let cell = stm.new_cell(0);
        let mut t = stm.register();
        let mut attempts = 0;
        let out = t.atomic(|tx| {
            attempts += 1;
            if attempts < 3 {
                return Err(TxAbort::Conflict);
            }
            tx.write(&cell, attempts)?;
            Ok(attempts)
        });
        assert_eq!(out, Some(3));
        assert_eq!(VersionedStm::<OrecTableLayout>::peek(&cell), 3);
    }

    #[test]
    fn local_mode_label_and_behaviour() {
        let stm = VersionedStm::<OrecTableLayout>::with_config(Config::local());
        assert_eq!(stm.config().clock, ClockMode::Local);
        let cells: Vec<_> = (0..16).map(|i| stm.new_cell(i)).collect();
        let mut t = stm.register();
        // A larger read set exercises the incremental validation path.
        let sum = t.atomic(|tx| {
            let mut s = 0;
            for c in &cells {
                s += tx.read(c)?;
            }
            tx.write(&cells[0], s)?;
            Ok(s)
        });
        assert_eq!(sum, Some((0..16).sum()));
    }
}
