//! Write sets for full (traditional) transactions.
//!
//! BaseTM uses deferred updates: transactional writes are buffered in a write
//! set and flushed to memory at commit time.  Because later reads of the same
//! location must observe the buffered value, the write set needs an efficient
//! read-after-write lookup; following Spear et al. the default representation
//! is a small open-addressing hash table over the entry log.  A plain linear
//! log is available for the ablation benchmarks.

use std::sync::atomic::AtomicUsize;

use crate::config::WriteSetKind;
use crate::orec::Orec;
use crate::word::Word;

/// One buffered transactional write.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WriteEntry {
    /// Address of the application data word.
    pub data: *const AtomicUsize,
    /// Address of the orec guarding it.
    pub orec: *const Orec,
    /// The value to store at commit time.
    pub value: Word,
    /// Set during commit when this entry was the one that acquired its orec
    /// (false-sharing can map several entries to one orec).
    pub locked_here: bool,
    /// The orec word observed when the lock was acquired (used to restore the
    /// version on abort).
    pub old_orec_raw: Word,
}

/// A deferred-update write set with O(1) read-after-write lookups.
#[derive(Debug)]
pub(crate) struct WriteSet {
    kind: WriteSetKind,
    entries: Vec<WriteEntry>,
    /// Open-addressing index over `entries`; stores `entry_index + 1`, with
    /// zero meaning "empty slot".
    index: Vec<u32>,
    mask: usize,
}

const INITIAL_INDEX_SLOTS: usize = 64;

#[inline]
fn hash_ptr(p: *const AtomicUsize) -> usize {
    (p as usize >> 3).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 13
}

impl WriteSet {
    pub(crate) fn new(kind: WriteSetKind) -> Self {
        Self {
            kind,
            entries: Vec::with_capacity(16),
            index: vec![0; INITIAL_INDEX_SLOTS],
            mask: INITIAL_INDEX_SLOTS - 1,
        }
    }

    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    pub(crate) fn entries(&self) -> &[WriteEntry] {
        &self.entries
    }

    pub(crate) fn entries_mut(&mut self) -> &mut [WriteEntry] {
        &mut self.entries
    }

    /// Removes every entry, keeping allocations for reuse.
    pub(crate) fn clear(&mut self) {
        self.entries.clear();
        if self.kind == WriteSetKind::Hashed {
            self.index.iter_mut().for_each(|slot| *slot = 0);
        }
    }

    /// Buffers a write of `value` to `data` (guarded by `orec`), overwriting
    /// any earlier buffered write to the same word.
    pub(crate) fn insert(&mut self, data: *const AtomicUsize, orec: *const Orec, value: Word) {
        match self.kind {
            WriteSetKind::Linear => {
                for e in &mut self.entries {
                    if e.data == data {
                        e.value = value;
                        return;
                    }
                }
                self.push_entry(data, orec, value);
            }
            WriteSetKind::Hashed => {
                let mut slot = hash_ptr(data) & self.mask;
                loop {
                    let idx = self.index[slot];
                    if idx == 0 {
                        let entry_idx = self.push_entry(data, orec, value);
                        self.index[slot] = entry_idx as u32 + 1;
                        if self.entries.len() * 2 >= self.index.len() {
                            self.grow_index();
                        }
                        return;
                    }
                    let entry = &mut self.entries[idx as usize - 1];
                    if entry.data == data {
                        entry.value = value;
                        return;
                    }
                    slot = (slot + 1) & self.mask;
                }
            }
        }
    }

    /// Returns the buffered value for `data`, if any (read-after-write).
    pub(crate) fn lookup(&self, data: *const AtomicUsize) -> Option<Word> {
        match self.kind {
            WriteSetKind::Linear => self
                .entries
                .iter()
                .find(|e| e.data == data)
                .map(|e| e.value),
            WriteSetKind::Hashed => {
                if self.entries.is_empty() {
                    return None;
                }
                let mut slot = hash_ptr(data) & self.mask;
                loop {
                    let idx = self.index[slot];
                    if idx == 0 {
                        return None;
                    }
                    let entry = &self.entries[idx as usize - 1];
                    if entry.data == data {
                        return Some(entry.value);
                    }
                    slot = (slot + 1) & self.mask;
                }
            }
        }
    }

    fn push_entry(&mut self, data: *const AtomicUsize, orec: *const Orec, value: Word) -> usize {
        self.entries.push(WriteEntry {
            data,
            orec,
            value,
            locked_here: false,
            old_orec_raw: 0,
        });
        self.entries.len() - 1
    }

    fn grow_index(&mut self) {
        let new_len = self.index.len() * 2;
        self.index = vec![0; new_len];
        self.mask = new_len - 1;
        for (i, e) in self.entries.iter().enumerate() {
            let mut slot = hash_ptr(e.data) & self.mask;
            while self.index[slot] != 0 {
                slot = (slot + 1) & self.mask;
            }
            self.index[slot] = i as u32 + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_cells(n: usize) -> Vec<AtomicUsize> {
        (0..n).map(AtomicUsize::new).collect()
    }

    #[test]
    fn insert_then_lookup_hashed() {
        let cells = mk_cells(8);
        let orec = Orec::new();
        let mut ws = WriteSet::new(WriteSetKind::Hashed);
        assert!(ws.is_empty());
        for (i, c) in cells.iter().enumerate() {
            ws.insert(c, &orec, i * 10);
        }
        assert_eq!(ws.len(), 8);
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(ws.lookup(c as *const _), Some(i * 10));
        }
        let other = AtomicUsize::new(0);
        assert_eq!(ws.lookup(&other), None);
    }

    #[test]
    fn overwrite_keeps_single_entry() {
        let cells = mk_cells(1);
        let orec = Orec::new();
        for kind in [WriteSetKind::Hashed, WriteSetKind::Linear] {
            let mut ws = WriteSet::new(kind);
            ws.insert(&cells[0], &orec, 1);
            ws.insert(&cells[0], &orec, 2);
            assert_eq!(ws.len(), 1);
            assert_eq!(ws.lookup(&cells[0] as *const _), Some(2));
        }
    }

    #[test]
    fn clear_resets_state() {
        let cells = mk_cells(4);
        let orec = Orec::new();
        let mut ws = WriteSet::new(WriteSetKind::Hashed);
        for c in &cells {
            ws.insert(c, &orec, 7);
        }
        ws.clear();
        assert!(ws.is_empty());
        assert_eq!(ws.lookup(&cells[0] as *const _), None);
        // The set must be fully reusable after clearing.
        ws.insert(&cells[1], &orec, 9);
        assert_eq!(ws.lookup(&cells[1] as *const _), Some(9));
    }

    #[test]
    fn grows_past_initial_capacity() {
        let cells = mk_cells(500);
        let orec = Orec::new();
        let mut ws = WriteSet::new(WriteSetKind::Hashed);
        for (i, c) in cells.iter().enumerate() {
            ws.insert(c, &orec, i);
        }
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(ws.lookup(c as *const _), Some(i));
        }
    }

    #[test]
    fn linear_matches_hashed_semantics() {
        let cells = mk_cells(64);
        let orec = Orec::new();
        let mut hashed = WriteSet::new(WriteSetKind::Hashed);
        let mut linear = WriteSet::new(WriteSetKind::Linear);
        for (i, c) in cells.iter().enumerate() {
            hashed.insert(c, &orec, i);
            linear.insert(c, &orec, i);
        }
        for c in &cells {
            assert_eq!(hashed.lookup(c), linear.lookup(c));
        }
    }
}
