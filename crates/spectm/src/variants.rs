//! Convenient names for the points of the paper's design space.
//!
//! The paper names variants `<layout>-<api>-<clock>`:
//!
//! * layout ∈ {`orec`, `tvar`, `val`} — where the STM meta-data lives;
//! * api ∈ {`full`, `short`} — whether the data structure uses the
//!   traditional interface or the specialized short-transaction interface;
//! * clock ∈ {`g`, `l`} — global version clock vs per-orec (local) versions.
//!
//! The *layout* and *clock* are properties of the STM instance (its type and
//! its [`crate::Config`]); the *api* is a property of how the data structure
//! uses that instance.  The aliases below therefore map each layout to its
//! type, and the `full`/`short` aliases exist purely for readability in
//! examples and benchmarks — e.g. [`TvarShortG`] and [`TvarFullG`] are the
//! same type, instantiated with the same configuration, but the benchmarks
//! drive them through different APIs.

use crate::layout::{OrecTableLayout, TvarLayout};
use crate::versioned::VersionedStm;

/// STM with a hash-indexed table of ownership records (Figure 3(a)).
pub type OrecStm = VersionedStm<OrecTableLayout>;

/// STM with per-data-item ownership records on the same cache line
/// (Figure 3(b)).
pub type TvarStm = VersionedStm<TvarLayout>;

/// The paper's BaseTM: orec table, traditional API, global version clock.
pub type OrecFullG = OrecStm;

/// Orec table driven through the short-transaction API, global clock.
pub type OrecShortG = OrecStm;

/// TVar layout, traditional API, global clock.
pub type TvarFullG = TvarStm;

/// TVar layout driven through the short-transaction API, global clock.
pub type TvarShortG = TvarStm;

/// Value-based layout, traditional (NOrec-style) API.
pub type ValFull = crate::val::ValStm;

/// Value-based layout driven through the short-transaction API — the paper's
/// fastest variant.
pub type ValShort = crate::val::ValStm;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Stm;
    use crate::config::Config;

    #[test]
    fn aliases_build_and_label() {
        assert_eq!(OrecFullG::new().label(), "orec-g");
        assert_eq!(TvarShortG::new().label(), "tvar-g");
        assert_eq!(ValShort::new().label(), "val");
        assert_eq!(OrecStm::with_config(Config::local()).label(), "orec-l");
        assert_eq!(TvarStm::with_config(Config::local()).label(), "tvar-l");
    }
}
