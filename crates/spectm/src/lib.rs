//! SpecTM: specialized software transactional memory, in Rust.
//!
//! This crate reproduces the STM described in *"STM in the Small: Trading
//! Generality for Performance in Software Transactional Memory"*
//! (Dragojević & Harris, EuroSys 2012).  It provides:
//!
//! * **BaseTM** — a traditional word-based STM in the style of TL2 (global
//!   version clock, commit-time locking, invisible reads, deferred updates,
//!   hash-based write sets, timebase extension) with an alternative
//!   per-orec/local-clock mode;
//! * a **specialized API for short transactions** (single-location reads,
//!   writes and CASes; read-write and read-only transactions over a small,
//!   statically-indexed set of locations; combined RO/RW commits; RO→RW
//!   upgrades);
//! * three **meta-data layouts**: a hash-indexed ownership-record table
//!   ([`layout::OrecTableLayout`]), per-data-item ownership records co-located
//!   with the data ([`layout::TvarLayout`]), and a single lock bit folded into
//!   the data word with value-based validation ([`ValStm`]).
//!
//! All variants are unified behind the [`Stm`] / [`StmThread`] traits so that
//! a data structure written once runs unchanged over every point in the
//! paper's design space — exactly how the paper isolates the contribution of
//! each specialization.
//!
//! # Quick start
//!
//! ```
//! use spectm::{Stm, StmThread};
//! use spectm::variants::TvarShortG;
//!
//! let stm = TvarShortG::new();
//! let counter = stm.new_cell(0);
//! let mut thread = stm.register();
//!
//! // A traditional (full) transaction.
//! let committed = thread.atomic(|tx| {
//!     let v = tx.read(&counter)?;
//!     tx.write(&counter, v + 1)?;
//!     Ok(v)
//! });
//! assert_eq!(committed, Some(0));
//!
//! // The same update expressed as a specialized short transaction.
//! loop {
//!     let v = thread.rw_read(0, &counter);
//!     if !thread.rw_is_valid(1) {
//!         continue;
//!     }
//!     thread.rw_commit(1, &[v + 1]);
//!     break;
//! }
//! assert_eq!(thread.single_read(&counter), 2);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod api;
pub mod backoff;
pub mod clock;
pub mod config;
pub mod layout;
pub mod orec;
pub mod stats;
pub mod val;
pub mod variants;
pub mod versioned;
pub mod word;

pub use api::{FullTx, Stm, StmThread, TxAbort, TxResult, MAX_SHORT};
pub use backoff::Backoff;
pub use clock::{ClockMode, GlobalClock};
pub use config::{Config, ShortLocking, WriteSetKind};
pub use orec::Orec;
pub use stats::{Stats, StatsSnapshot};
pub use val::{ValCell, ValStm, ValThread};
pub use variants::*;
pub use versioned::{VersionedStm, VersionedThread};
pub use word::{
    decode_inline, decode_int, encode_inline, encode_int, is_inline_value, is_marked, mark, unmark,
    Word, INLINE_BYTES_BIT, INLINE_INT_BIT, INLINE_INT_BITS, MARK_BIT, MAX_INLINE_BYTES,
    VAL_SPARE_BITS,
};
