//! Transaction statistics.
//!
//! Each thread keeps its own counters (no shared cache lines on the fast
//! path); the harness aggregates snapshots after a run to report commit and
//! abort rates alongside throughput.

use std::ops::AddAssign;

/// Per-thread transaction counters.
///
/// All counters are plain `u64`s updated by the owning thread only.
#[derive(Debug, Default, Clone)]
pub struct Stats {
    /// Full transactions started (including restarts).
    pub full_starts: u64,
    /// Full transactions committed.
    pub full_commits: u64,
    /// Full transactions aborted because of a conflict.
    pub full_aborts: u64,
    /// Full transactions cancelled explicitly by the user.
    pub full_cancels: u64,
    /// Transactional reads performed by full transactions.
    pub full_reads: u64,
    /// Transactional writes performed by full transactions.
    pub full_writes: u64,
    /// Timebase extensions that succeeded (global-clock mode only).
    pub extensions: u64,
    /// Short read-write transactions started.
    pub short_rw_starts: u64,
    /// Short read-write transactions committed.
    pub short_rw_commits: u64,
    /// Short read-write transactions that failed to acquire a location.
    pub short_rw_conflicts: u64,
    /// Short read-only transactions validated successfully.
    pub short_ro_commits: u64,
    /// Short read-only transactions that failed validation.
    pub short_ro_conflicts: u64,
    /// Single-location transactions (read, write or CAS).
    pub singles: u64,
}

impl Stats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a copyable snapshot of the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            full_starts: self.full_starts,
            full_commits: self.full_commits,
            full_aborts: self.full_aborts,
            full_cancels: self.full_cancels,
            full_reads: self.full_reads,
            full_writes: self.full_writes,
            extensions: self.extensions,
            short_rw_starts: self.short_rw_starts,
            short_rw_commits: self.short_rw_commits,
            short_rw_conflicts: self.short_rw_conflicts,
            short_ro_commits: self.short_ro_commits,
            short_ro_conflicts: self.short_ro_conflicts,
            singles: self.singles,
        }
    }
}

/// An owned, aggregatable snapshot of [`Stats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// See [`Stats::full_starts`].
    pub full_starts: u64,
    /// See [`Stats::full_commits`].
    pub full_commits: u64,
    /// See [`Stats::full_aborts`].
    pub full_aborts: u64,
    /// See [`Stats::full_cancels`].
    pub full_cancels: u64,
    /// See [`Stats::full_reads`].
    pub full_reads: u64,
    /// See [`Stats::full_writes`].
    pub full_writes: u64,
    /// See [`Stats::extensions`].
    pub extensions: u64,
    /// See [`Stats::short_rw_starts`].
    pub short_rw_starts: u64,
    /// See [`Stats::short_rw_commits`].
    pub short_rw_commits: u64,
    /// See [`Stats::short_rw_conflicts`].
    pub short_rw_conflicts: u64,
    /// See [`Stats::short_ro_commits`].
    pub short_ro_commits: u64,
    /// See [`Stats::short_ro_conflicts`].
    pub short_ro_conflicts: u64,
    /// See [`Stats::singles`].
    pub singles: u64,
}

impl StatsSnapshot {
    /// Total commits across full and short transactions.
    pub fn total_commits(&self) -> u64 {
        self.full_commits + self.short_rw_commits + self.short_ro_commits + self.singles
    }

    /// Total conflicts/aborts across full and short transactions.
    pub fn total_aborts(&self) -> u64 {
        self.full_aborts + self.short_rw_conflicts + self.short_ro_conflicts
    }

    /// Abort ratio in `[0, 1]`; zero when nothing ran.
    pub fn abort_ratio(&self) -> f64 {
        let attempts = self.total_commits() + self.total_aborts();
        if attempts == 0 {
            0.0
        } else {
            self.total_aborts() as f64 / attempts as f64
        }
    }
}

impl AddAssign for StatsSnapshot {
    fn add_assign(&mut self, rhs: Self) {
        self.full_starts += rhs.full_starts;
        self.full_commits += rhs.full_commits;
        self.full_aborts += rhs.full_aborts;
        self.full_cancels += rhs.full_cancels;
        self.full_reads += rhs.full_reads;
        self.full_writes += rhs.full_writes;
        self.extensions += rhs.extensions;
        self.short_rw_starts += rhs.short_rw_starts;
        self.short_rw_commits += rhs.short_rw_commits;
        self.short_rw_conflicts += rhs.short_rw_conflicts;
        self.short_ro_commits += rhs.short_ro_commits;
        self.short_ro_conflicts += rhs.short_ro_conflicts;
        self.singles += rhs.singles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_copies_counters() {
        let mut s = Stats::new();
        s.full_commits = 3;
        s.short_rw_commits = 2;
        let snap = s.snapshot();
        assert_eq!(snap.full_commits, 3);
        assert_eq!(snap.total_commits(), 5);
    }

    #[test]
    fn aggregation_adds_fields() {
        let mut a = StatsSnapshot {
            full_commits: 1,
            full_aborts: 1,
            ..Default::default()
        };
        let b = StatsSnapshot {
            full_commits: 2,
            short_rw_conflicts: 4,
            ..Default::default()
        };
        a += b;
        assert_eq!(a.full_commits, 3);
        assert_eq!(a.total_aborts(), 5);
    }

    #[test]
    fn abort_ratio_handles_zero() {
        let s = StatsSnapshot::default();
        assert_eq!(s.abort_ratio(), 0.0);
        let s = StatsSnapshot {
            full_commits: 1,
            full_aborts: 1,
            ..Default::default()
        };
        assert!((s.abort_ratio() - 0.5).abs() < 1e-9);
    }
}
