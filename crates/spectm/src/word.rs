//! The transactional word type and value-encoding helpers.
//!
//! SpecTM, like the paper's C implementation, manages memory at the
//! granularity of one machine word.  Values stored in transactional cells are
//! plain [`Word`]s; data structures store either pointers (converted with
//! `as usize`) or small integers.
//!
//! The `val` layout (Section 2.4 of the paper) reserves **bit 0** of every
//! data word for the STM's lock bit, so values stored in [`crate::ValCell`]s
//! must keep bit 0 clear.  Pointers to 2-byte-or-better aligned data satisfy
//! this naturally; integers must be encoded with [`encode_int`] /
//! [`decode_int`], which shift them into the 63 spare bits.
//!
//! Data structures additionally use **bit 1** as a logical-deletion mark on
//! pointers (the skip list's "deleted" bit), via [`mark`] / [`unmark`] /
//! [`is_marked`].  Bit 1 is used instead of the customary bit 0 precisely so
//! that marked pointers remain legal `val`-layout values.
//!
//! # Value words
//!
//! Byte-addressed stores (the `spectm-kv` crate and the lock-free KV
//! baseline) keep every transactional access word-sized by storing each
//! value as a single **value word** in one of three forms, distinguished by
//! the two bits a word-aligned pointer always leaves clear:
//!
//! * **inline bytes** (bit 1 set) — payloads up to [`MAX_INLINE_BYTES`]
//!   bytes, packed into the word itself with a 3-bit length field
//!   ([`encode_inline`] / [`decode_inline`]);
//! * **inline integer** (bit 2 set) — payloads of exactly one word whose
//!   little-endian integer fits in [`INLINE_INT_BITS`] bits, so word-sized
//!   counters stay allocation-free;
//! * **out-of-line pointer** (bits 1 and 2 clear) — a pointer to an
//!   immutable, length-prefixed heap cell holding the bytes.
//!
//! The mark bit and the inline tag share bit 1 without conflict because a
//! cell never holds both roles: *link* words hold (possibly marked) node
//! pointers, *value* words hold encoded values.  Every form keeps bit 0
//! clear, so value words are legal `val`-layout data.

/// A transactional machine word.
pub type Word = usize;

/// Number of value bits available to the application in the `val` layout
/// (one bit of the word is reserved for the STM lock bit).
pub const VAL_SPARE_BITS: u32 = Word::BITS - 1;

/// Bit reserved by the *data structures* (not the STM) as a logical deletion
/// mark on stored pointers.
pub const MARK_BIT: Word = 0b10;

/// Encodes a small integer as a transactional value with bit 0 clear.
///
/// # Panics
///
/// Panics in debug builds if `v` does not fit in [`VAL_SPARE_BITS`] bits.
///
/// # Examples
///
/// ```
/// let w = spectm::encode_int(1234);
/// assert_eq!(spectm::decode_int(w), 1234);
/// assert_eq!(w & 1, 0);
/// ```
#[inline]
pub const fn encode_int(v: usize) -> Word {
    debug_assert!(v < (1 << VAL_SPARE_BITS));
    v << 1
}

/// Decodes an integer previously encoded with [`encode_int`].
#[inline]
pub const fn decode_int(w: Word) -> usize {
    w >> 1
}

/// Sets the logical-deletion mark on a stored pointer value.
///
/// # Examples
///
/// ```
/// let p = 0x1000_usize;
/// assert!(spectm::is_marked(spectm::mark(p)));
/// assert_eq!(spectm::unmark(spectm::mark(p)), p);
/// ```
#[inline]
pub const fn mark(w: Word) -> Word {
    w | MARK_BIT
}

/// Clears the logical-deletion mark from a stored pointer value.
#[inline]
pub const fn unmark(w: Word) -> Word {
    w & !MARK_BIT
}

/// Returns whether the logical-deletion mark is set.
#[inline]
pub const fn is_marked(w: Word) -> bool {
    w & MARK_BIT != 0
}

/// Tag bit marking a value word as *inline bytes* (see the module docs).
pub const INLINE_BYTES_BIT: Word = 0b010;

/// Tag bit marking a value word as an *inline integer*.
pub const INLINE_INT_BIT: Word = 0b100;

// Compile-time mirror of the `bit-layout` stmlint rule: every tag leaves
// bit 0 (the `val` layout's lock bit) clear, the two inline tags are
// distinguishable, and all tag bits fit in the low byte that out-of-line
// `ValueCell` pointers keep clear through their alignment.
const _: () = {
    assert!(MARK_BIT & 1 == 0, "MARK_BIT must leave the lock bit clear");
    assert!(
        INLINE_BYTES_BIT & 1 == 0,
        "inline-bytes tag overlaps lock bit"
    );
    assert!(INLINE_INT_BIT & 1 == 0, "inline-int tag overlaps lock bit");
    assert!(
        INLINE_BYTES_BIT & INLINE_INT_BIT == 0,
        "inline tags must be distinguishable"
    );
    // Each tag (and the lock bit) sits below the out-of-line cell's
    // 8-byte alignment, so a cell pointer's low bits never carry payload.
    assert!(
        INLINE_BYTES_BIT < 8 && INLINE_INT_BIT < 8,
        "tags must fit below the alignment of out-of-line cells"
    );
    assert!(INLINE_INT_BITS == Word::BITS - 3);
};

/// Longest payload storable as inline bytes: one byte of the word carries
/// the tag and length, the rest carry the payload.
pub const MAX_INLINE_BYTES: usize = std::mem::size_of::<Word>() - 1;

/// Number of payload bits of an inline integer (bits 0..3 hold the tag).
pub const INLINE_INT_BITS: u32 = Word::BITS - 3;

/// Packs `bytes` into a single value word, if they fit: payloads up to
/// [`MAX_INLINE_BYTES`] bytes always do, and payloads of exactly one word
/// do when their little-endian integer fits in [`INLINE_INT_BITS`] bits.
/// Returns `None` for everything else (store the bytes out of line and the
/// pointer in the word instead).
///
/// # Examples
///
/// ```
/// let w = spectm::encode_inline(b"abc").unwrap();
/// let (buf, len) = spectm::decode_inline(w);
/// assert_eq!(&buf[..len], b"abc");
/// assert_eq!(w & 1, 0); // bit 0 stays clear for the val layout
/// ```
#[inline]
pub fn encode_inline(bytes: &[u8]) -> Option<Word> {
    let len = bytes.len();
    if len <= MAX_INLINE_BYTES {
        let mut payload: Word = 0;
        for (i, &b) in bytes.iter().enumerate() {
            payload |= (b as Word) << (8 * i);
        }
        return Some((payload << 8) | ((len as Word) << 3) | INLINE_BYTES_BIT);
    }
    if len == std::mem::size_of::<Word>() {
        let mut buf = [0u8; std::mem::size_of::<Word>()];
        buf.copy_from_slice(bytes);
        let v = Word::from_le_bytes(buf);
        if v >> INLINE_INT_BITS == 0 {
            return Some((v << 3) | INLINE_INT_BIT);
        }
    }
    None
}

/// Returns whether a value word holds its payload inline (either inline
/// form) rather than an out-of-line pointer.
#[inline]
pub const fn is_inline_value(w: Word) -> bool {
    w & (INLINE_BYTES_BIT | INLINE_INT_BIT) != 0
}

/// Unpacks an inline value word produced by [`encode_inline`], returning the
/// payload buffer and its length (allocation-free; the payload is the first
/// `len` bytes of the buffer).
#[inline]
pub fn decode_inline(w: Word) -> ([u8; std::mem::size_of::<Word>()], usize) {
    debug_assert!(is_inline_value(w));
    if w & INLINE_BYTES_BIT != 0 {
        ((w >> 8).to_le_bytes(), (w >> 3) & 0b111)
    } else {
        ((w >> 3).to_le_bytes(), std::mem::size_of::<Word>())
    }
}

/// Converts a reference to a word-sized address, used as a hash key when
/// locating ownership records.
#[inline]
pub(crate) fn addr_of<T>(r: &T) -> usize {
    r as *const T as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_roundtrip() {
        for v in [0usize, 1, 42, 65_535, (1 << 62) - 1] {
            assert_eq!(decode_int(encode_int(v)), v);
            assert_eq!(encode_int(v) & 0b01, 0);
        }
    }

    #[test]
    fn mark_roundtrip() {
        let p = 0xdead_bee0_usize;
        assert!(!is_marked(p));
        let m = mark(p);
        assert!(is_marked(m));
        assert_eq!(unmark(m), p);
        // Marking must not disturb the val-layout lock bit.
        assert_eq!(m & 0b01, 0);
    }

    #[test]
    fn mark_is_idempotent() {
        let p = 0x40_usize;
        assert_eq!(mark(mark(p)), mark(p));
        assert_eq!(unmark(unmark(mark(p))), p);
    }

    #[test]
    fn inline_bytes_roundtrip() {
        for len in 0..=MAX_INLINE_BYTES {
            let bytes: Vec<u8> = (0..len as u8).map(|b| b.wrapping_mul(37) ^ 0xA5).collect();
            let w = encode_inline(&bytes).expect("short payloads are inline");
            assert!(is_inline_value(w));
            assert_eq!(w & 0b001, 0, "val-layout lock bit must stay clear");
            let (buf, n) = decode_inline(w);
            assert_eq!(&buf[..n], &bytes[..]);
        }
    }

    #[test]
    fn inline_int_roundtrip() {
        for v in [0 as Word, 1, 0xDEAD_BEEF, (1 << INLINE_INT_BITS) - 1] {
            let bytes = v.to_le_bytes();
            let w = encode_inline(&bytes).expect("small word-sized ints are inline");
            assert!(is_inline_value(w));
            assert_eq!(w & 0b001, 0);
            let (buf, n) = decode_inline(w);
            assert_eq!(n, std::mem::size_of::<Word>());
            assert_eq!(buf, bytes);
        }
    }

    #[test]
    fn oversized_payloads_are_not_inline() {
        // One word with the top tag bits set cannot be packed.
        assert_eq!(encode_inline(&Word::MAX.to_le_bytes()), None);
        // Anything longer than a word cannot either.
        assert_eq!(encode_inline(&[0u8; std::mem::size_of::<Word>() + 1]), None);
    }

    #[test]
    fn inline_forms_are_injective() {
        // Distinct payloads must encode to distinct words, across both forms.
        let mut seen = std::collections::BTreeSet::new();
        assert!(seen.insert(encode_inline(&[]).unwrap()));
        for len in 1..=MAX_INLINE_BYTES {
            for fill in [0x00u8, 0x01, 0xFF] {
                assert!(seen.insert(encode_inline(&vec![fill; len]).unwrap()));
            }
        }
        assert!(seen.insert(encode_inline(&(0 as Word).to_le_bytes()).unwrap()));
        assert!(seen.insert(encode_inline(&(1 as Word).to_le_bytes()).unwrap()));
    }

    #[test]
    fn addresses_are_word_aligned() {
        let x = 0u64;
        assert_eq!(addr_of(&x) % std::mem::align_of::<u64>(), 0);
    }
}
