//! The transactional word type and value-encoding helpers.
//!
//! SpecTM, like the paper's C implementation, manages memory at the
//! granularity of one machine word.  Values stored in transactional cells are
//! plain [`Word`]s; data structures store either pointers (converted with
//! `as usize`) or small integers.
//!
//! The `val` layout (Section 2.4 of the paper) reserves **bit 0** of every
//! data word for the STM's lock bit, so values stored in [`crate::ValCell`]s
//! must keep bit 0 clear.  Pointers to 2-byte-or-better aligned data satisfy
//! this naturally; integers must be encoded with [`encode_int`] /
//! [`decode_int`], which shift them into the 63 spare bits.
//!
//! Data structures additionally use **bit 1** as a logical-deletion mark on
//! pointers (the skip list's "deleted" bit), via [`mark`] / [`unmark`] /
//! [`is_marked`].  Bit 1 is used instead of the customary bit 0 precisely so
//! that marked pointers remain legal `val`-layout values.

/// A transactional machine word.
pub type Word = usize;

/// Number of value bits available to the application in the `val` layout
/// (one bit of the word is reserved for the STM lock bit).
pub const VAL_SPARE_BITS: u32 = Word::BITS - 1;

/// Bit reserved by the *data structures* (not the STM) as a logical deletion
/// mark on stored pointers.
pub const MARK_BIT: Word = 0b10;

/// Encodes a small integer as a transactional value with bit 0 clear.
///
/// # Panics
///
/// Panics in debug builds if `v` does not fit in [`VAL_SPARE_BITS`] bits.
///
/// # Examples
///
/// ```
/// let w = spectm::encode_int(1234);
/// assert_eq!(spectm::decode_int(w), 1234);
/// assert_eq!(w & 1, 0);
/// ```
#[inline]
pub const fn encode_int(v: usize) -> Word {
    debug_assert!(v < (1 << VAL_SPARE_BITS));
    v << 1
}

/// Decodes an integer previously encoded with [`encode_int`].
#[inline]
pub const fn decode_int(w: Word) -> usize {
    w >> 1
}

/// Sets the logical-deletion mark on a stored pointer value.
///
/// # Examples
///
/// ```
/// let p = 0x1000_usize;
/// assert!(spectm::is_marked(spectm::mark(p)));
/// assert_eq!(spectm::unmark(spectm::mark(p)), p);
/// ```
#[inline]
pub const fn mark(w: Word) -> Word {
    w | MARK_BIT
}

/// Clears the logical-deletion mark from a stored pointer value.
#[inline]
pub const fn unmark(w: Word) -> Word {
    w & !MARK_BIT
}

/// Returns whether the logical-deletion mark is set.
#[inline]
pub const fn is_marked(w: Word) -> bool {
    w & MARK_BIT != 0
}

/// Converts a reference to a word-sized address, used as a hash key when
/// locating ownership records.
#[inline]
pub(crate) fn addr_of<T>(r: &T) -> usize {
    r as *const T as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_roundtrip() {
        for v in [0usize, 1, 42, 65_535, (1 << 62) - 1] {
            assert_eq!(decode_int(encode_int(v)), v);
            assert_eq!(encode_int(v) & 0b01, 0);
        }
    }

    #[test]
    fn mark_roundtrip() {
        let p = 0xdead_bee0_usize;
        assert!(!is_marked(p));
        let m = mark(p);
        assert!(is_marked(m));
        assert_eq!(unmark(m), p);
        // Marking must not disturb the val-layout lock bit.
        assert_eq!(m & 0b01, 0);
    }

    #[test]
    fn mark_is_idempotent() {
        let p = 0x40_usize;
        assert_eq!(mark(mark(p)), mark(p));
        assert_eq!(unmark(unmark(mark(p))), p);
    }

    #[test]
    fn addresses_are_word_aligned() {
        let x = 0u64;
        assert_eq!(addr_of(&x) % std::mem::align_of::<u64>(), 0);
    }
}
