//! Ownership records ("orecs").
//!
//! An orec is one word of STM meta-data guarding one or more application data
//! words.  The word packs a lock bit with either a version number (when
//! unlocked) or a pointer to the owning transaction's descriptor (when
//! locked), exactly as in TL2-style STMs and in the paper's Figure 3:
//!
//! ```text
//!   unlocked:  [ version .......................... | 0 ]
//!   locked:    [ owner descriptor address >> 1 ..... | 1 ]
//! ```
//!
//! Versions are drawn either from the global version clock (`*-g` variants)
//! or are private to the orec (`*-l` variants); the orec itself does not care.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::word::Word;

const LOCK_BIT: Word = 1;

/// Snapshot of an orec's state at a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrecState {
    /// The orec is unlocked and carries this version number.
    Unlocked(Word),
    /// The orec is locked by the transaction descriptor at this address.
    Locked(usize),
}

/// One ownership record.
///
/// The in-memory representation is a single `AtomicUsize`; in the orec-table
/// layout records are additionally padded to a cache line to avoid false
/// sharing between neighbouring table slots.
#[derive(Debug)]
#[repr(transparent)]
pub struct Orec {
    word: AtomicUsize,
}

impl Default for Orec {
    fn default() -> Self {
        Self::new()
    }
}

impl Orec {
    /// Creates an unlocked orec with version 0.
    pub const fn new() -> Self {
        Self {
            word: AtomicUsize::new(0),
        }
    }

    /// Creates an unlocked orec with the given initial version.
    pub const fn with_version(version: Word) -> Self {
        Self {
            word: AtomicUsize::new(version << 1),
        }
    }

    /// Reads the current state.
    #[inline]
    pub fn state(&self, order: Ordering) -> OrecState {
        Self::decode(self.word.load(order))
    }

    /// Decodes a raw orec word.
    #[inline]
    pub fn decode(raw: Word) -> OrecState {
        if raw & LOCK_BIT == 0 {
            OrecState::Unlocked(raw >> 1)
        } else {
            OrecState::Locked(raw & !LOCK_BIT)
        }
    }

    /// Loads the raw word (useful for double-checked read protocols).
    #[inline]
    pub fn raw(&self, order: Ordering) -> Word {
        self.word.load(order)
    }

    /// Returns the version if `raw` encodes an unlocked orec.
    #[inline]
    pub fn version_of(raw: Word) -> Option<Word> {
        if raw & LOCK_BIT == 0 {
            Some(raw >> 1)
        } else {
            None
        }
    }

    /// Returns whether `raw` encodes a locked orec.
    #[inline]
    pub fn is_locked_raw(raw: Word) -> bool {
        raw & LOCK_BIT != 0
    }

    /// Attempts to lock the orec for `owner` (a descriptor address), given the
    /// raw word previously observed.
    ///
    /// Returns `true` on success.  Fails if the orec changed since
    /// `observed_raw` was read (different version, or already locked).
    #[inline]
    pub fn try_lock(&self, observed_raw: Word, owner: usize) -> bool {
        if Self::is_locked_raw(observed_raw) {
            return false;
        }
        debug_assert_eq!(owner & LOCK_BIT, 0, "descriptor addresses are aligned");
        self.word
            .compare_exchange(
                observed_raw,
                owner | LOCK_BIT,
                Ordering::AcqRel,
                Ordering::Relaxed,
            )
            .is_ok()
    }

    /// Returns whether the orec is currently locked by `owner`.
    #[inline]
    pub fn is_locked_by(&self, owner: usize) -> bool {
        self.word.load(Ordering::Relaxed) == owner | LOCK_BIT
    }

    /// Releases a lock held by the caller, installing `new_version`.
    ///
    /// The caller must own the lock (checked in debug builds).
    #[inline]
    pub fn unlock_to_version(&self, owner: usize, new_version: Word) {
        debug_assert!(self.is_locked_by(owner), "unlock_to_version by a non-owner");
        let _ = owner;
        self.word.store(new_version << 1, Ordering::Release);
    }

    /// Reads the version, assuming (and debug-asserting) the orec is unlocked.
    #[inline]
    pub fn version(&self, order: Ordering) -> Word {
        let raw = self.word.load(order);
        debug_assert!(!Self::is_locked_raw(raw));
        raw >> 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_orec_is_unlocked_version_zero() {
        let o = Orec::new();
        assert_eq!(o.state(Ordering::Relaxed), OrecState::Unlocked(0));
    }

    #[test]
    fn lock_unlock_roundtrip() {
        let o = Orec::with_version(7);
        let raw = o.raw(Ordering::Relaxed);
        assert_eq!(Orec::version_of(raw), Some(7));
        let owner = 0x1000usize;
        assert!(o.try_lock(raw, owner));
        assert!(o.is_locked_by(owner));
        assert_eq!(Orec::version_of(o.raw(Ordering::Relaxed)), None);
        o.unlock_to_version(owner, 8);
        assert_eq!(o.state(Ordering::Relaxed), OrecState::Unlocked(8));
    }

    #[test]
    fn lock_fails_on_stale_observation() {
        let o = Orec::with_version(3);
        let stale = Orec::with_version(2).raw(Ordering::Relaxed);
        assert!(!o.try_lock(stale, 0x2000));
        assert_eq!(o.state(Ordering::Relaxed), OrecState::Unlocked(3));
    }

    #[test]
    fn lock_fails_when_already_locked() {
        let o = Orec::new();
        let raw = o.raw(Ordering::Relaxed);
        assert!(o.try_lock(raw, 0x10));
        let raw2 = o.raw(Ordering::Relaxed);
        assert!(!o.try_lock(raw2, 0x20));
        assert!(o.is_locked_by(0x10));
    }

    #[test]
    fn decode_locked_recovers_owner() {
        let owner = 0xabcd_ef00_usize;
        match Orec::decode(owner | 1) {
            OrecState::Locked(a) => assert_eq!(a, owner),
            other => panic!("unexpected state {other:?}"),
        }
    }
}
