//! Shared helpers for the Criterion benchmarks.
//!
//! The benchmark targets in `benches/` reproduce the paper's figures at the
//! granularity Criterion is good at — per-operation latency of each variant —
//! while the `harness` binaries (`fig1`..`fig10`) produce the full
//! multi-threaded throughput sweeps.  DESIGN.md maps every figure to both.
//!
//! The main abstraction here is a *type-erased operation runner*: a boxed
//! closure that owns a fully constructed integer set (a given STM variant +
//! data structure + API mode, or a baseline) together with its per-thread
//! context, and performs one lookup/insert/remove per call.  Erasing the
//! types lets one Criterion loop iterate over the whole variant catalogue.

#![warn(missing_docs)]

use harness::adapters::{BenchSet, LockFreeBench, SeqBench, StmHashBench, StmSkipBench};
use harness::VariantSpec;
use lockfree::{LockFreeHashTable, LockFreeSkipList, SeqHashTable, SeqSkipList};
use spectm::variants::{OrecStm, TvarStm, ValShort};
use spectm::{Config, Stm};
use spectm_ds::ApiMode;
use txepoch::Collector;

/// A type-erased integer-set operation driver: `runner(key, dice)` performs a
/// lookup when `dice < lookup_pct`, otherwise an insert or remove.
pub type OpRunner = Box<dyn FnMut(u64, u64)>;

fn erase<B: BenchSet>(set: B, key_range: u64, lookup_pct: u64) -> OpRunner {
    harness::intset::prefill(&set, key_range);
    let mut ctx = set.thread_ctx();
    Box::new(move |key, dice| {
        let dice = dice % 100;
        if dice < lookup_pct {
            std::hint::black_box(set.contains(key, &mut ctx));
        } else if dice % 2 == 0 {
            std::hint::black_box(set.insert(key, &mut ctx));
        } else {
            std::hint::black_box(set.remove(key, &mut ctx));
        }
    })
}

fn stm_config(spec: VariantSpec) -> Config {
    let mut config = match spec {
        VariantSpec::OrecFullL
        | VariantSpec::OrecShortL
        | VariantSpec::TvarFullL
        | VariantSpec::TvarShortL => Config::local(),
        _ => Config::global(),
    };
    config.orec_table_size = 1 << 18;
    config
}

fn api_mode(spec: VariantSpec) -> ApiMode {
    match spec {
        VariantSpec::OrecShortG
        | VariantSpec::OrecShortL
        | VariantSpec::TvarShortG
        | VariantSpec::TvarShortL
        | VariantSpec::ValShort => ApiMode::Short,
        VariantSpec::OrecFullGFine => ApiMode::Fine,
        _ => ApiMode::Full,
    }
}

/// Builds an operation runner over the hash table for `spec`.
pub fn hash_runner(spec: VariantSpec, buckets: usize, key_range: u64, lookup_pct: u64) -> OpRunner {
    match spec {
        VariantSpec::Sequential => erase(
            SeqBench::new(SeqHashTable::new(buckets)),
            key_range,
            lookup_pct,
        ),
        VariantSpec::LockFree => erase(
            LockFreeBench::new(LockFreeHashTable::new(buckets, Collector::new())),
            key_range,
            lookup_pct,
        ),
        VariantSpec::OrecFullG
        | VariantSpec::OrecFullL
        | VariantSpec::OrecShortG
        | VariantSpec::OrecShortL
        | VariantSpec::OrecFullGFine => erase(
            StmHashBench::new(
                OrecStm::with_config(stm_config(spec)),
                buckets,
                api_mode(spec),
            ),
            key_range,
            lookup_pct,
        ),
        VariantSpec::TvarFullG
        | VariantSpec::TvarFullL
        | VariantSpec::TvarShortG
        | VariantSpec::TvarShortL => erase(
            StmHashBench::new(
                TvarStm::with_config(stm_config(spec)),
                buckets,
                api_mode(spec),
            ),
            key_range,
            lookup_pct,
        ),
        VariantSpec::ValFull | VariantSpec::ValShort => erase(
            StmHashBench::new(
                ValShort::with_config(stm_config(spec)),
                buckets,
                api_mode(spec),
            ),
            key_range,
            lookup_pct,
        ),
    }
}

/// Builds an operation runner over the skip list for `spec`.
pub fn skip_runner(spec: VariantSpec, key_range: u64, lookup_pct: u64) -> OpRunner {
    match spec {
        VariantSpec::Sequential => erase(SeqBench::new(SeqSkipList::new()), key_range, lookup_pct),
        VariantSpec::LockFree => erase(
            LockFreeBench::new(LockFreeSkipList::new(Collector::new())),
            key_range,
            lookup_pct,
        ),
        VariantSpec::OrecFullG
        | VariantSpec::OrecFullL
        | VariantSpec::OrecShortG
        | VariantSpec::OrecShortL
        | VariantSpec::OrecFullGFine => erase(
            StmSkipBench::new(OrecStm::with_config(stm_config(spec)), api_mode(spec)),
            key_range,
            lookup_pct,
        ),
        VariantSpec::TvarFullG
        | VariantSpec::TvarFullL
        | VariantSpec::TvarShortG
        | VariantSpec::TvarShortL => erase(
            StmSkipBench::new(TvarStm::with_config(stm_config(spec)), api_mode(spec)),
            key_range,
            lookup_pct,
        ),
        VariantSpec::ValFull | VariantSpec::ValShort => erase(
            StmSkipBench::new(ValShort::with_config(stm_config(spec)), api_mode(spec)),
            key_range,
            lookup_pct,
        ),
    }
}

/// A deterministic key/dice stream shared by the bench loops.
pub struct KeyStream {
    state: u64,
    key_range: u64,
}

impl KeyStream {
    /// Creates a stream over `0..key_range`.
    pub fn new(seed: u64, key_range: u64) -> Self {
        Self {
            state: seed | 1,
            key_range,
        }
    }

    /// Next `(key, dice)` pair.
    pub fn next_pair(&mut self) -> (u64, u64) {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        let key = self.state % self.key_range;
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        (key, self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runners_execute_operations_for_every_variant() {
        for spec in VariantSpec::all() {
            let mut runner = hash_runner(spec, 64, 256, 80);
            let mut stream = KeyStream::new(7, 256);
            for _ in 0..200 {
                let (key, dice) = stream.next_pair();
                runner(key, dice);
            }
        }
    }

    #[test]
    fn skip_runners_execute_operations_for_every_variant() {
        for spec in VariantSpec::all() {
            let mut runner = skip_runner(spec, 256, 80);
            let mut stream = KeyStream::new(9, 256);
            for _ in 0..200 {
                let (key, dice) = stream.next_pair();
                runner(key, dice);
            }
        }
    }
}
