//! Shared helpers for the Criterion benchmarks.
//!
//! The benchmark targets in `benches/` reproduce the paper's figures at the
//! granularity Criterion is good at — per-operation latency of each variant —
//! while the `harness` binaries (`fig1`..`fig10`) produce the full
//! multi-threaded throughput sweeps.  DESIGN.md maps every figure to both.
//!
//! The main abstraction here is a *type-erased operation runner*: a boxed
//! closure that owns a fully constructed integer set (a given STM variant +
//! data structure + API mode, or a baseline) together with its per-thread
//! context, and performs one lookup/insert/remove per call.  Erasing the
//! types lets one Criterion loop iterate over the whole variant catalogue.

#![warn(missing_docs)]

use harness::adapters::{BenchSet, LockFreeBench, SeqBench, StmHashBench, StmSkipBench};
use harness::intset::{choose_op, SetOp};
use harness::kv::{
    KeyDist, KvMix, KvStore, KvWorkloadConfig, LockFreeKvBench, StmKvBench, ValueSize, WorkerState,
};
use harness::VariantSpec;
use lockfree::{LockFreeHashTable, LockFreeKvMap, LockFreeSkipList, SeqHashTable, SeqSkipList};
use spectm::variants::{OrecStm, TvarStm, ValShort};
use spectm::{Config, Stm};
use spectm_ds::ApiMode;
use txepoch::Collector;

/// A type-erased integer-set operation driver: `runner(key, raw)` picks a
/// lookup, insert or remove from the raw random draw via
/// [`harness::intset::choose_op`] — the same dispatch the multi-threaded
/// driver uses, so the two agree on the exact operation mix.
pub type OpRunner = Box<dyn FnMut(u64, u64)>;

fn erase<B: BenchSet>(set: B, key_range: u64, lookup_pct: u64) -> OpRunner {
    harness::intset::prefill(&set, key_range);
    let mut ctx = set.thread_ctx();
    Box::new(move |key, raw| match choose_op(raw, lookup_pct as u32) {
        SetOp::Lookup => {
            std::hint::black_box(set.contains(key, &mut ctx));
        }
        SetOp::Insert => {
            std::hint::black_box(set.insert(key, &mut ctx));
        }
        SetOp::Remove => {
            std::hint::black_box(set.remove(key, &mut ctx));
        }
    })
}

fn stm_config(spec: VariantSpec) -> Config {
    let mut config = match spec {
        VariantSpec::OrecFullL
        | VariantSpec::OrecShortL
        | VariantSpec::TvarFullL
        | VariantSpec::TvarShortL => Config::local(),
        _ => Config::global(),
    };
    config.orec_table_size = 1 << 18;
    config
}

fn api_mode(spec: VariantSpec) -> ApiMode {
    match spec {
        VariantSpec::OrecShortG
        | VariantSpec::OrecShortL
        | VariantSpec::TvarShortG
        | VariantSpec::TvarShortL
        | VariantSpec::ValShort => ApiMode::Short,
        VariantSpec::OrecFullGFine => ApiMode::Fine,
        _ => ApiMode::Full,
    }
}

/// Builds an operation runner over the hash table for `spec`.
pub fn hash_runner(spec: VariantSpec, buckets: usize, key_range: u64, lookup_pct: u64) -> OpRunner {
    match spec {
        VariantSpec::Sequential => erase(
            SeqBench::new(SeqHashTable::new(buckets)),
            key_range,
            lookup_pct,
        ),
        VariantSpec::LockFree => erase(
            LockFreeBench::new(LockFreeHashTable::new(buckets, Collector::new())),
            key_range,
            lookup_pct,
        ),
        VariantSpec::OrecFullG
        | VariantSpec::OrecFullL
        | VariantSpec::OrecShortG
        | VariantSpec::OrecShortL
        | VariantSpec::OrecFullGFine => erase(
            StmHashBench::new(
                OrecStm::with_config(stm_config(spec)),
                buckets,
                api_mode(spec),
            ),
            key_range,
            lookup_pct,
        ),
        VariantSpec::TvarFullG
        | VariantSpec::TvarFullL
        | VariantSpec::TvarShortG
        | VariantSpec::TvarShortL => erase(
            StmHashBench::new(
                TvarStm::with_config(stm_config(spec)),
                buckets,
                api_mode(spec),
            ),
            key_range,
            lookup_pct,
        ),
        VariantSpec::ValFull | VariantSpec::ValShort => erase(
            StmHashBench::new(
                ValShort::with_config(stm_config(spec)),
                buckets,
                api_mode(spec),
            ),
            key_range,
            lookup_pct,
        ),
    }
}

/// Builds an operation runner over the skip list for `spec`.
pub fn skip_runner(spec: VariantSpec, key_range: u64, lookup_pct: u64) -> OpRunner {
    match spec {
        VariantSpec::Sequential => erase(SeqBench::new(SeqSkipList::new()), key_range, lookup_pct),
        VariantSpec::LockFree => erase(
            LockFreeBench::new(LockFreeSkipList::new(Collector::new())),
            key_range,
            lookup_pct,
        ),
        VariantSpec::OrecFullG
        | VariantSpec::OrecFullL
        | VariantSpec::OrecShortG
        | VariantSpec::OrecShortL
        | VariantSpec::OrecFullGFine => erase(
            StmSkipBench::new(OrecStm::with_config(stm_config(spec)), api_mode(spec)),
            key_range,
            lookup_pct,
        ),
        VariantSpec::TvarFullG
        | VariantSpec::TvarFullL
        | VariantSpec::TvarShortG
        | VariantSpec::TvarShortL => erase(
            StmSkipBench::new(TvarStm::with_config(stm_config(spec)), api_mode(spec)),
            key_range,
            lookup_pct,
        ),
        VariantSpec::ValFull | VariantSpec::ValShort => erase(
            StmSkipBench::new(ValShort::with_config(stm_config(spec)), api_mode(spec)),
            key_range,
            lookup_pct,
        ),
    }
}

// ---------------------------------------------------------------------------
// KV-store runners
// ---------------------------------------------------------------------------

fn erase_kv<K: KvStore>(
    store: K,
    num_keys: u64,
    mix: KvMix,
    dist: KeyDist,
    value_size: ValueSize,
) -> OpRunner {
    harness::kv::load_keys(&store, num_keys, value_size);
    let mut ctx = store.thread_ctx();
    // Extra RMW keys, scan lengths and payload lengths follow the panel's
    // distributions, exactly as in the multi-threaded driver (`perform_op`
    // is the single dispatch shared by both, so the bench and the `kv`
    // binary measure the same workload).
    let cfg = KvWorkloadConfig {
        num_keys,
        mix,
        dist,
        value_size,
        ..KvWorkloadConfig::default()
    };
    let mut state = WorkerState::new(&cfg, 0x1D10_7BEE);
    Box::new(move |key, raw| {
        harness::kv::perform_op(&store, &mut ctx, key, raw, &mut state);
    })
}

/// Builds an operation runner over the sharded KV store for `spec` (any STM
/// variant or the lock-free baseline; there is no sequential KV store).
/// `capacity_per_shard` is the per-shard key-capacity hint the tables size
/// their bucket arrays from (~0.75 target load factor); `dist` governs the
/// keys of multi-key read-modify-writes, `value_size` the payload lengths;
/// the primary key is whatever the caller feeds the runner.
pub fn kv_runner(
    spec: VariantSpec,
    shards: usize,
    capacity_per_shard: usize,
    num_keys: u64,
    mix: KvMix,
    dist: KeyDist,
    value_size: ValueSize,
) -> OpRunner {
    match spec {
        VariantSpec::Sequential => panic!("the KV store has no sequential baseline"),
        VariantSpec::LockFree => erase_kv(
            LockFreeKvBench::new(LockFreeKvMap::new(
                shards * capacity_per_shard,
                Collector::new(),
            )),
            num_keys,
            mix,
            dist,
            value_size,
        ),
        VariantSpec::OrecFullG
        | VariantSpec::OrecFullL
        | VariantSpec::OrecShortG
        | VariantSpec::OrecShortL
        | VariantSpec::OrecFullGFine => erase_kv(
            StmKvBench::new(
                OrecStm::with_config(stm_config(spec)),
                shards,
                capacity_per_shard,
                api_mode(spec),
            ),
            num_keys,
            mix,
            dist,
            value_size,
        ),
        VariantSpec::TvarFullG
        | VariantSpec::TvarFullL
        | VariantSpec::TvarShortG
        | VariantSpec::TvarShortL => erase_kv(
            StmKvBench::new(
                TvarStm::with_config(stm_config(spec)),
                shards,
                capacity_per_shard,
                api_mode(spec),
            ),
            num_keys,
            mix,
            dist,
            value_size,
        ),
        VariantSpec::ValFull | VariantSpec::ValShort => erase_kv(
            StmKvBench::new(
                ValShort::with_config(stm_config(spec)),
                shards,
                capacity_per_shard,
                api_mode(spec),
            ),
            num_keys,
            mix,
            dist,
            value_size,
        ),
    }
}

// ---------------------------------------------------------------------------
// Batched KV runners
// ---------------------------------------------------------------------------

/// A type-erased batch driver: each call builds one batch of the configured
/// size from the panel's distributions and executes it through the store's
/// `execute_batch` path ([`harness::kv::perform_batch`]).
pub type BatchRunner = Box<dyn FnMut()>;

fn erase_kv_batch<K: KvStore>(
    store: K,
    num_keys: u64,
    mix: KvMix,
    dist: KeyDist,
    value_size: ValueSize,
    batch: usize,
) -> BatchRunner {
    harness::kv::load_keys(&store, num_keys, value_size);
    let mut ctx = store.thread_ctx();
    let cfg = KvWorkloadConfig {
        num_keys,
        mix,
        dist,
        value_size,
        batch,
        ..KvWorkloadConfig::default()
    };
    let mut state = WorkerState::new(&cfg, 0x1D10_7BEE);
    Box::new(move || {
        harness::kv::perform_batch(&store, &mut ctx, batch, &mut state);
    })
}

/// Builds a batch driver over the sharded KV store for `spec` (any STM
/// variant or the lock-free baseline): the `kv_batch_*` panels' engine.
/// `batch` operations per call, drawn from `mix` / `dist` / `value_size`.
#[allow(clippy::too_many_arguments)]
pub fn kv_batch_runner(
    spec: VariantSpec,
    shards: usize,
    capacity_per_shard: usize,
    num_keys: u64,
    mix: KvMix,
    dist: KeyDist,
    value_size: ValueSize,
    batch: usize,
) -> BatchRunner {
    match spec {
        VariantSpec::Sequential => panic!("the KV store has no sequential baseline"),
        VariantSpec::LockFree => erase_kv_batch(
            LockFreeKvBench::new(LockFreeKvMap::new(
                shards * capacity_per_shard,
                Collector::new(),
            )),
            num_keys,
            mix,
            dist,
            value_size,
            batch,
        ),
        VariantSpec::OrecFullG
        | VariantSpec::OrecFullL
        | VariantSpec::OrecShortG
        | VariantSpec::OrecShortL
        | VariantSpec::OrecFullGFine => erase_kv_batch(
            StmKvBench::new(
                OrecStm::with_config(stm_config(spec)),
                shards,
                capacity_per_shard,
                api_mode(spec),
            ),
            num_keys,
            mix,
            dist,
            value_size,
            batch,
        ),
        VariantSpec::TvarFullG
        | VariantSpec::TvarFullL
        | VariantSpec::TvarShortG
        | VariantSpec::TvarShortL => erase_kv_batch(
            StmKvBench::new(
                TvarStm::with_config(stm_config(spec)),
                shards,
                capacity_per_shard,
                api_mode(spec),
            ),
            num_keys,
            mix,
            dist,
            value_size,
            batch,
        ),
        VariantSpec::ValFull | VariantSpec::ValShort => erase_kv_batch(
            StmKvBench::new(
                ValShort::with_config(stm_config(spec)),
                shards,
                capacity_per_shard,
                api_mode(spec),
            ),
            num_keys,
            mix,
            dist,
            value_size,
            batch,
        ),
    }
}

/// A deterministic key/raw-draw stream shared by the bench loops.
pub struct KeyStream {
    state: u64,
    key_range: u64,
}

impl KeyStream {
    /// Creates a stream over `0..key_range`.
    pub fn new(seed: u64, key_range: u64) -> Self {
        Self {
            state: seed | 1,
            key_range,
        }
    }

    /// Next `(key, raw)` pair: a uniform key plus a raw 64-bit draw for the
    /// operation dispatch.
    pub fn next_pair(&mut self) -> (u64, u64) {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        let key = self.state % self.key_range;
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        (key, self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runners_execute_operations_for_every_variant() {
        for spec in VariantSpec::all() {
            let mut runner = hash_runner(spec, 64, 256, 80);
            let mut stream = KeyStream::new(7, 256);
            for _ in 0..200 {
                let (key, dice) = stream.next_pair();
                runner(key, dice);
            }
        }
    }

    #[test]
    fn skip_runners_execute_operations_for_every_variant() {
        for spec in VariantSpec::all() {
            let mut runner = skip_runner(spec, 256, 80);
            let mut stream = KeyStream::new(9, 256);
            for _ in 0..200 {
                let (key, dice) = stream.next_pair();
                runner(key, dice);
            }
        }
    }

    #[test]
    fn kv_runners_execute_operations_for_every_concurrent_variant() {
        for mix in [KvMix::ReadHeavy, KvMix::UpdateHeavy, KvMix::ReadModifyWrite] {
            for spec in VariantSpec::all() {
                if spec == VariantSpec::Sequential {
                    continue;
                }
                let mut runner =
                    kv_runner(spec, 4, 64, 256, mix, KeyDist::Zipfian, ValueSize::Zipf);
                let mut stream = KeyStream::new(21, 256);
                for _ in 0..200 {
                    let (key, raw) = stream.next_pair();
                    runner(key, raw);
                }
            }
        }
    }
}
