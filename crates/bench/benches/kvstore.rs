//! Per-operation latency of the sharded KV store under the YCSB-style
//! mixes and key distributions — the Criterion companion of the `kv`
//! binary's multi-threaded sweeps (see EXPERIMENTS.md).
//!
//! One group per mix × distribution panel; within each group, one series
//! per variant (the short-transaction layouts, the BaseTM full-transaction
//! shape and the lock-free baseline).  The `scan_heavy` groups measure the
//! YCSB-E shape: zipfian-length range scans (atomically consistent full
//! transactions for the STM store, best-effort walks for the lock-free
//! baseline) mixed with fresh-key inserts.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use bench::kv_runner;
use harness::intset::Xorshift;
use harness::kv::{KeyDist, KeySampler, KvMix};
use harness::VariantSpec;

const NUM_KEYS: u64 = 16_384;
const SHARDS: usize = 16;
const BUCKETS_PER_SHARD: usize = 2_048;

const VARIANTS: [VariantSpec; 4] = [
    VariantSpec::ValShort,
    VariantSpec::TvarShortG,
    VariantSpec::OrecFullG,
    VariantSpec::LockFree,
];

fn configure(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(400));
}

fn bench_kv_panel(c: &mut Criterion, mix: KvMix, dist: KeyDist) {
    let group_name = format!("kv_{}_{}", mix.label().replace('/', "_"), dist.label());
    let mut group = c.benchmark_group(&group_name);
    configure(&mut group);
    for spec in VARIANTS {
        let mut runner = kv_runner(spec, SHARDS, BUCKETS_PER_SHARD, NUM_KEYS, mix, dist);
        let sampler = KeySampler::new(dist, NUM_KEYS);
        let mut rng = Xorshift::new(0xC0DE_5EED);
        group.bench_function(spec.label(), |b| {
            b.iter(|| {
                let key = sampler.sample(&mut rng);
                let raw = rng.next();
                runner(key, raw);
            })
        });
    }
    group.finish();
}

fn read_heavy(c: &mut Criterion) {
    bench_kv_panel(c, KvMix::ReadHeavy, KeyDist::Uniform);
    bench_kv_panel(c, KvMix::ReadHeavy, KeyDist::Zipfian);
}

fn update_heavy(c: &mut Criterion) {
    bench_kv_panel(c, KvMix::UpdateHeavy, KeyDist::Uniform);
    bench_kv_panel(c, KvMix::UpdateHeavy, KeyDist::Zipfian);
}

fn read_modify_write(c: &mut Criterion) {
    bench_kv_panel(c, KvMix::ReadModifyWrite, KeyDist::Uniform);
    bench_kv_panel(c, KvMix::ReadModifyWrite, KeyDist::Latest);
}

fn scan_heavy(c: &mut Criterion) {
    bench_kv_panel(c, KvMix::ScanHeavy, KeyDist::Uniform);
    bench_kv_panel(c, KvMix::ScanHeavy, KeyDist::Zipfian);
}

criterion_group!(
    kvstore,
    read_heavy,
    update_heavy,
    read_modify_write,
    scan_heavy
);
criterion_main!(kvstore);
