//! Per-operation latency of the sharded KV store under the YCSB-style
//! mixes, key distributions and value sizes — the Criterion companion of
//! the `kv` binary's multi-threaded sweeps (see EXPERIMENTS.md).
//!
//! One group per mix × distribution panel; within each group, one series
//! per variant (the short-transaction layouts, the BaseTM full-transaction
//! shape and the lock-free baseline).  The `scan_heavy` groups measure the
//! YCSB-E shape: zipfian-length range scans (atomically consistent full
//! transactions for the STM store, best-effort walks for the lock-free
//! baseline) mixed with fresh-key inserts.
//!
//! The `kv_value_*` groups sweep the payload size — 8 B (the inline
//! fast path: word-sized values never touch the allocator), 100 B and
//! 1 KiB (out-of-line epoch-reclaimed cells) — under the read-heavy mix.
//! Each is annotated with its bytes-per-operation throughput, so the
//! harness reports MB/s next to ns/iter and ops/s.
//!
//! The `kv_load_*` groups pin the tables' bucket arrays and sweep the key
//! count so occupancy lands at 0.25, 0.50 and 0.90 of the slot budget —
//! the probe-length panel that shows lookups staying flat as the flat
//! 7-slot buckets fill and overflow chains appear.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use bench::{kv_batch_runner, kv_runner};
use harness::intset::Xorshift;
use harness::kv::{KeyDist, KeySampler, KvMix, ValueSize};
use harness::VariantSpec;

const NUM_KEYS: u64 = 16_384;
const SHARDS: usize = 16;
/// Capacity hint per shard (keys, not buckets): the key space split evenly,
/// landing each shard's table near the ~0.75 target load factor.
const CAPACITY_PER_SHARD: usize = (NUM_KEYS as usize) / SHARDS;

const VARIANTS: [VariantSpec; 4] = [
    VariantSpec::ValShort,
    VariantSpec::TvarShortG,
    VariantSpec::OrecFullG,
    VariantSpec::LockFree,
];

fn configure(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(400));
}

fn bench_kv_panel(c: &mut Criterion, name: &str, mix: KvMix, dist: KeyDist, value_size: ValueSize) {
    let mut group = c.benchmark_group(name);
    configure(&mut group);
    // Bytes-per-op annotation only for the point-operation mixes, where one
    // operation moves exactly one value of the distribution.  A scan moves
    // dozens of values per operation and an RMW moves `rmw_keys`, so a flat
    // per-value figure would misreport their MB/s by a mix-dependent factor;
    // those panels report ns/iter only.
    if matches!(mix, KvMix::ReadHeavy | KvMix::UpdateHeavy | KvMix::ReadOnly) {
        group.throughput(Throughput::Bytes(value_size.mean_len() as u64));
    }
    for spec in VARIANTS {
        let mut runner = kv_runner(
            spec,
            SHARDS,
            CAPACITY_PER_SHARD,
            NUM_KEYS,
            mix,
            dist,
            value_size,
        );
        let sampler = KeySampler::new(dist, NUM_KEYS);
        let mut rng = Xorshift::new(0xC0DE_5EED);
        group.bench_function(spec.label(), |b| {
            b.iter(|| {
                let key = sampler.sample(&mut rng);
                let raw = rng.next();
                runner(key, raw);
            })
        });
    }
    group.finish();
}

fn mix_panel(c: &mut Criterion, mix: KvMix, dist: KeyDist) {
    let name = format!("kv_{}_{}", mix.label().replace('/', "_"), dist.label());
    bench_kv_panel(c, &name, mix, dist, ValueSize::default());
}

fn read_heavy(c: &mut Criterion) {
    mix_panel(c, KvMix::ReadHeavy, KeyDist::Uniform);
    mix_panel(c, KvMix::ReadHeavy, KeyDist::Zipfian);
}

fn update_heavy(c: &mut Criterion) {
    mix_panel(c, KvMix::UpdateHeavy, KeyDist::Uniform);
    mix_panel(c, KvMix::UpdateHeavy, KeyDist::Zipfian);
}

fn read_modify_write(c: &mut Criterion) {
    mix_panel(c, KvMix::ReadModifyWrite, KeyDist::Uniform);
    mix_panel(c, KvMix::ReadModifyWrite, KeyDist::Latest);
}

fn scan_heavy(c: &mut Criterion) {
    mix_panel(c, KvMix::ScanHeavy, KeyDist::Uniform);
    mix_panel(c, KvMix::ScanHeavy, KeyDist::Zipfian);
}

/// The value-size sweep: 8 B inline, 100 B and 1 KiB out-of-line cells,
/// read-heavy 95/5 over uniform keys (EXPERIMENTS.md § value-size sweep).
fn value_sizes(c: &mut Criterion) {
    for (label, size) in [
        ("8B", ValueSize::Fixed(8)),
        ("100B", ValueSize::Fixed(100)),
        ("1KB", ValueSize::Fixed(1_024)),
    ] {
        let name = format!("kv_value_{label}_read_heavy_uniform");
        bench_kv_panel(c, &name, KvMix::ReadHeavy, KeyDist::Uniform, size);
    }
}

/// The probe-length panel: read-heavy point lookups with the tables pinned
/// at low, target and stressed occupancy (EXPERIMENTS.md § load-factor
/// sweep).  Every table is built with the same capacity hint — 1 280 keys
/// per shard, which sizes each shard at 256 home buckets (1 792 slots) —
/// and the *key count* sweeps the load factor: 0.25 (half-empty lines),
/// 0.50, and 0.90 (past the ~0.75 design target, where overflow chains
/// appear).  Bounded probe lengths mean the ns/op spread across these three
/// groups stays small; `kv --stats --key-range N --capacity 20480` prints
/// the matching probe-length histograms.
fn load_factors(c: &mut Criterion) {
    const SWEEP_CAPACITY_PER_SHARD: usize = 1_280;
    const SLOTS: u64 = 16 * 256 * 7; // shards x home buckets x slots/bucket
    for (label, num_keys) in [
        ("0.25", SLOTS / 4),
        ("0.50", SLOTS / 2),
        ("0.90", SLOTS * 9 / 10),
    ] {
        let name = format!("kv_load_{label}_read_heavy_uniform");
        let mut group = c.benchmark_group(&name);
        configure(&mut group);
        for spec in VARIANTS {
            let mut runner = kv_runner(
                spec,
                SHARDS,
                SWEEP_CAPACITY_PER_SHARD,
                num_keys,
                KvMix::ReadHeavy,
                KeyDist::Uniform,
                ValueSize::default(),
            );
            let sampler = KeySampler::new(KeyDist::Uniform, num_keys);
            let mut rng = Xorshift::new(0xC0DE_5EED);
            group.bench_function(spec.label(), |b| {
                b.iter(|| {
                    let key = sampler.sample(&mut rng);
                    let raw = rng.next();
                    runner(key, raw);
                })
            });
        }
        group.finish();
    }
}

/// The batch-size sweep: one iteration executes one whole batch, and the
/// `Throughput::Elements` annotation divides it back out, so every panel
/// reports **operations per second** — directly comparable across batch
/// sizes and against the unbatched read-heavy panel.  Batch 1 measures the
/// batch API's fixed cost; 16 and 128 show routing + epoch entry
/// amortizing away (EXPERIMENTS.md § "The batch sweep").
fn batch_sizes(c: &mut Criterion) {
    for batch in [1usize, 16, 128] {
        let name = format!("kv_batch_{batch}_read_heavy_uniform");
        let mut group = c.benchmark_group(&name);
        configure(&mut group);
        group.throughput(Throughput::Elements(batch as u64));
        for spec in VARIANTS {
            let mut runner = kv_batch_runner(
                spec,
                SHARDS,
                CAPACITY_PER_SHARD,
                NUM_KEYS,
                KvMix::ReadHeavy,
                KeyDist::Uniform,
                ValueSize::default(),
                batch,
            );
            group.bench_function(spec.label(), |b| b.iter(&mut runner));
        }
        group.finish();
    }
}

/// The coalescing panel: F frames of 16 gets each, executed either as F
/// separate `execute_batch_into` dispatches — one epoch entry and one
/// grouping pass per frame, what a per-connection server pays — or as one
/// `MultiBatch` dispatch covering all F frames, what the multiplexing
/// server's sweep pays.  Both series run the identical pre-drawn key
/// stream and report ops/s via `Throughput::Elements`, so the gap *is* the
/// amortized per-frame fixed cost (EXPERIMENTS.md § "The connection
/// sweep").
fn coalesced_dispatch(c: &mut Criterion) {
    use spectm::variants::ValShort;
    use spectm::Stm;
    use spectm_ds::ApiMode;
    use spectm_kv::{BatchRequest, BatchResponse, MultiBatch, ShardedKv};

    const OPS_PER_FRAME: usize = 16;
    let stm = ValShort::new();
    let store = ShardedKv::new(&stm, SHARDS, CAPACITY_PER_SHARD, ApiMode::Short);
    let mut thread = store.register();
    for key in 0..NUM_KEYS {
        store.put(key, &key.to_le_bytes(), &mut thread).unwrap();
    }
    let mut rng = Xorshift::new(0xC0DE_5EED);
    for frames in [4usize, 16] {
        let name = format!("kv_coalesce_{frames}x{OPS_PER_FRAME}_get_uniform");
        let mut group = c.benchmark_group(&name);
        configure(&mut group);
        group.throughput(Throughput::Elements((frames * OPS_PER_FRAME) as u64));
        let keys: Vec<Vec<u64>> = (0..frames)
            .map(|_| (0..OPS_PER_FRAME).map(|_| rng.next() % NUM_KEYS).collect())
            .collect();
        let mut reqs: Vec<BatchRequest> = keys
            .iter()
            .map(|frame| {
                let mut req = BatchRequest::new();
                for &key in frame {
                    req.get(key);
                }
                req
            })
            .collect();
        let mut resp = BatchResponse::new();
        group.bench_function("separate_dispatches", |b| {
            b.iter(|| {
                for req in &mut reqs {
                    store
                        .execute_batch_into(req, &mut resp, &mut thread)
                        .unwrap();
                }
            })
        });
        let mut multi = MultiBatch::new();
        for (source, frame) in keys.iter().enumerate() {
            for &key in frame {
                multi.request_mut().get(key);
            }
            multi.commit_frame(source);
        }
        group.bench_function("one_multibatch", |b| {
            b.iter(|| store.execute_multi(&mut multi, &mut thread).unwrap())
        });
        group.finish();
    }
}

criterion_group!(
    kvstore,
    read_heavy,
    update_heavy,
    read_modify_write,
    scan_heavy,
    value_sizes,
    load_factors,
    batch_sizes,
    coalesced_dispatch
);
criterion_main!(kvstore);
