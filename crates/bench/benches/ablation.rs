//! Ablation benchmarks for the design choices called out in DESIGN.md.
//!
//! * hash-indexed vs linear write sets for full transactions (Spear et al.);
//! * encounter-time vs commit-time locking in short read-write transactions;
//! * orec-table size (false-sharing rate in the orec layout);
//! * contention-manager backoff on vs off under self-conflicting workloads.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use spectm::variants::{OrecStm, TvarStm};
use spectm::{Config, ShortLocking, Stm, StmThread, WriteSetKind};

fn configure(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400));
}

/// Full transactions writing a spread of locations: hash-indexed write set vs
/// linear write set with linear read-after-write search.
fn write_set_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_write_set");
    configure(&mut group);
    for (label, kind) in [
        ("hashed", WriteSetKind::Hashed),
        ("linear", WriteSetKind::Linear),
    ] {
        for width in [4usize, 16, 64] {
            let config = Config {
                write_set: kind,
                orec_table_size: 1 << 16,
                ..Config::global()
            };
            let stm = TvarStm::with_config(config);
            let cells: Vec<_> = (0..width).map(|i| stm.new_cell(i)).collect();
            let mut thread = stm.register();
            group.bench_function(format!("{label}/{width}_writes"), |b| {
                b.iter(|| {
                    thread.atomic(|tx| {
                        for cell in &cells {
                            let v = tx.read(cell)?;
                            tx.write(cell, v + 2)?;
                        }
                        // Read-after-write pass: must hit the write set.
                        let mut sum = 0usize;
                        for cell in &cells {
                            sum = sum.wrapping_add(tx.read(cell)?);
                        }
                        Ok(sum)
                    })
                })
            });
        }
    }
    group.finish();
}

/// Short read-write transactions: encounter-time locking (the paper's design)
/// vs the commit-time-locking ablation discussed around Figure 9(c).
fn short_locking_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_short_locking");
    configure(&mut group);
    for (label, locking) in [
        ("encounter_time", ShortLocking::Encounter),
        ("commit_time", ShortLocking::Commit),
    ] {
        let config = Config {
            short_locking: locking,
            orec_table_size: 1 << 16,
            ..Config::global()
        };
        let stm = TvarStm::with_config(config);
        let a = stm.new_cell(0);
        let b_cell = stm.new_cell(0);
        let mut thread = stm.register();
        group.bench_function(label, |b| {
            b.iter(|| loop {
                let va = thread.rw_read(0, &a);
                let vb = thread.rw_read(1, &b_cell);
                if !thread.rw_is_valid(2) {
                    continue;
                }
                if thread.rw_commit(2, &[va + 2, vb + 2]) {
                    break;
                }
            })
        });
    }
    group.finish();
}

/// Orec-table size: smaller tables increase false sharing between unrelated
/// cells (the cost the TVar layout eliminates entirely).
fn orec_table_size_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_orec_table_size");
    configure(&mut group);
    for bits in [8usize, 12, 16, 20] {
        let config = Config {
            orec_table_size: 1 << bits,
            ..Config::global()
        };
        let stm = OrecStm::with_config(config);
        let cells: Vec<_> = (0..1024usize).map(|i| stm.new_cell(i)).collect();
        let mut thread = stm.register();
        let mut i = 0usize;
        group.bench_function(format!("2^{bits}_orecs"), |b| {
            b.iter(|| {
                i = (i + 7) % 1024;
                loop {
                    let v = thread.rw_read(0, &cells[i]);
                    let w = thread.rw_read(1, &cells[(i + 511) % 1024]);
                    if !thread.rw_is_valid(2) {
                        continue;
                    }
                    if thread.rw_commit(2, &[v + 2, w + 2]) {
                        break;
                    }
                }
            })
        });
    }
    group.finish();
}

/// Contention-manager backoff on vs off; single-threaded this shows the
/// zero-conflict overhead is nil, which is exactly the property the paper's
/// randomized-linear scheme is chosen for.
fn backoff_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_backoff");
    configure(&mut group);
    for (label, backoff) in [("backoff_on", true), ("backoff_off", false)] {
        let config = Config {
            backoff,
            orec_table_size: 1 << 16,
            ..Config::global()
        };
        let stm = TvarStm::with_config(config);
        let cell = stm.new_cell(0);
        let mut thread = stm.register();
        group.bench_function(label, |b| {
            b.iter(|| {
                thread.atomic(|tx| {
                    let v = tx.read(&cell)?;
                    tx.write(&cell, v + 1)?;
                    Ok(())
                })
            })
        });
    }
    group.finish();
}

criterion_group!(
    ablations,
    write_set_ablation,
    short_locking_ablation,
    orec_table_size_ablation,
    backoff_ablation
);
criterion_main!(ablations);
