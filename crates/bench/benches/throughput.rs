//! Per-operation latency of every variant on the paper's integer-set
//! workloads — one Criterion group per figure panel.
//!
//! These benches capture the *relative ordering* of the variants (the shape
//! of each figure at low thread counts); the full multi-threaded sweeps are
//! produced by the `harness` binaries `fig1`, `fig6`..`fig10`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use bench::{hash_runner, skip_runner, KeyStream};
use harness::VariantSpec;

const KEY_RANGE: u64 = 16_384;

fn configure(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(400));
}

fn bench_hash_panel(
    c: &mut Criterion,
    group_name: &str,
    buckets: usize,
    lookup_pct: u64,
    variants: &[VariantSpec],
) {
    let mut group = c.benchmark_group(group_name);
    configure(&mut group);
    for &spec in variants {
        let mut runner = hash_runner(spec, buckets, KEY_RANGE, lookup_pct);
        let mut stream = KeyStream::new(0xDEAD_BEEF, KEY_RANGE);
        group.bench_function(spec.label(), |b| {
            b.iter(|| {
                let (key, dice) = stream.next_pair();
                runner(key, dice);
            })
        });
    }
    group.finish();
}

fn bench_skip_panel(
    c: &mut Criterion,
    group_name: &str,
    lookup_pct: u64,
    variants: &[VariantSpec],
) {
    let mut group = c.benchmark_group(group_name);
    configure(&mut group);
    for &spec in variants {
        let mut runner = skip_runner(spec, KEY_RANGE, lookup_pct);
        let mut stream = KeyStream::new(0xFACE_FEED, KEY_RANGE);
        group.bench_function(spec.label(), |b| {
            b.iter(|| {
                let (key, dice) = stream.next_pair();
                runner(key, dice);
            })
        });
    }
    group.finish();
}

/// Figure 1: hash table, 90% lookups, all headline variants + baselines.
fn fig1(c: &mut Criterion) {
    bench_hash_panel(
        c,
        "fig1_hash_90pct",
        4_096,
        90,
        &[
            VariantSpec::Sequential,
            VariantSpec::LockFree,
            VariantSpec::ValShort,
            VariantSpec::TvarShortG,
            VariantSpec::OrecShortG,
            VariantSpec::OrecFullG,
        ],
    );
}

/// Figure 6: skip list, 90% and 10% lookups (16-way machine in the paper).
fn fig6(c: &mut Criterion) {
    let variants = [
        VariantSpec::LockFree,
        VariantSpec::ValShort,
        VariantSpec::TvarShortG,
        VariantSpec::OrecShortG,
        VariantSpec::OrecFullG,
        VariantSpec::TvarFullL,
        VariantSpec::OrecFullGFine,
    ];
    bench_skip_panel(c, "fig6a_skiplist_90pct", 90, &variants);
    bench_skip_panel(c, "fig6b_skiplist_10pct", 10, &variants[..5]);
}

/// Figure 7: hash table, 90% and 10% lookups (16-way machine in the paper).
fn fig7(c: &mut Criterion) {
    let variants = [
        VariantSpec::LockFree,
        VariantSpec::ValShort,
        VariantSpec::TvarShortG,
        VariantSpec::TvarShortL,
        VariantSpec::OrecShortG,
        VariantSpec::OrecFullG,
        VariantSpec::OrecFullL,
    ];
    bench_hash_panel(c, "fig7a_hash_90pct", 4_096, 90, &variants);
    bench_hash_panel(c, "fig7b_hash_10pct", 4_096, 10, &variants);
}

/// Figure 8: skip list, 98% / 90% / 10% lookups (128-way machine in the paper).
fn fig8(c: &mut Criterion) {
    let variants = [
        VariantSpec::LockFree,
        VariantSpec::ValShort,
        VariantSpec::TvarShortL,
        VariantSpec::OrecShortL,
        VariantSpec::OrecFullL,
        VariantSpec::OrecFullG,
        VariantSpec::OrecShortG,
    ];
    bench_skip_panel(c, "fig8a_skiplist_98pct", 98, &variants);
    bench_skip_panel(c, "fig8b_skiplist_90pct", 90, &variants);
    bench_skip_panel(c, "fig8c_skiplist_10pct", 10, &variants);
}

/// Figure 9: hash table, 98% / 90% / 10% lookups (128-way machine in the paper).
fn fig9(c: &mut Criterion) {
    let variants = [
        VariantSpec::LockFree,
        VariantSpec::ValShort,
        VariantSpec::TvarShortL,
        VariantSpec::OrecShortL,
        VariantSpec::OrecFullL,
        VariantSpec::OrecFullG,
    ];
    bench_hash_panel(c, "fig9a_hash_98pct", 4_096, 98, &variants);
    bench_hash_panel(c, "fig9b_hash_90pct", 4_096, 90, &variants);
    bench_hash_panel(c, "fig9c_hash_10pct", 4_096, 10, &variants);
}

/// Figure 10: hash table with short (0.5-entry) and long (32-entry) chains.
fn fig10(c: &mut Criterion) {
    let variants = [
        VariantSpec::LockFree,
        VariantSpec::ValShort,
        VariantSpec::TvarShortL,
        VariantSpec::OrecShortL,
        VariantSpec::OrecFullL,
        VariantSpec::TvarFullL,
    ];
    // Short chains: more buckets than keys (0.5-entry chains).
    bench_hash_panel(c, "fig10a_hash_short_chains_98pct", 32_768, 98, &variants);
    // Long chains: 32-entry chains on average.
    bench_hash_panel(c, "fig10b_hash_long_chains_90pct", 512, 90, &variants);
}

criterion_group!(figures, fig1, fig6, fig7, fig8, fig9, fig10);
criterion_main!(figures);
