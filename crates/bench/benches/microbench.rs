//! Figure 5: single-threaded cost of short transactions, per variant, per
//! transaction kind, per array size.
//!
//! Each Criterion iteration builds a fresh STM instance and runs a fixed
//! batch of transactions of the given shape on randomly chosen slots of a
//! cache-line-aligned array of transactional cells, exactly as the paper's
//! synthetic workload does; `sequential` measures the plain load / CAS
//! baseline the paper normalizes against.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use harness::single_thread::{sequential_ns_per_op, stm_ns_per_op, TxKind};
use spectm::variants::{OrecStm, TvarStm, ValShort};
use spectm::{Config, Stm};
use spectm_ds::ApiMode;

/// The array sizes of Figure 5(a)–(c): L1-, L2- and L3-resident working sets.
const SIZES: [usize; 3] = [128, 1024, 32_768];

/// Transactions folded into one Criterion iteration so the measured unit is a
/// batch large enough to dominate setup and timer overhead.
const BATCH: usize = 4_000;

fn bench_config() -> Config {
    Config {
        orec_table_size: 1 << 16,
        ..Config::global()
    }
}

fn fig5(c: &mut Criterion) {
    for size in SIZES {
        let mut group = c.benchmark_group(format!("fig5_array_{size}"));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(100))
            .measurement_time(Duration::from_millis(400));

        for kind in TxKind::all() {
            group.bench_function(format!("sequential/{}", kind.label()), |b| {
                b.iter(|| std::hint::black_box(sequential_ns_per_op(kind, size, BATCH)))
            });
            group.bench_function(format!("orec-full-g/{}", kind.label()), |b| {
                b.iter(|| {
                    let stm = OrecStm::with_config(bench_config());
                    std::hint::black_box(stm_ns_per_op(&stm, ApiMode::Full, kind, size, BATCH))
                })
            });
            group.bench_function(format!("orec-short-g/{}", kind.label()), |b| {
                b.iter(|| {
                    let stm = OrecStm::with_config(bench_config());
                    std::hint::black_box(stm_ns_per_op(&stm, ApiMode::Short, kind, size, BATCH))
                })
            });
            group.bench_function(format!("tvar-short-g/{}", kind.label()), |b| {
                b.iter(|| {
                    let stm = TvarStm::with_config(bench_config());
                    std::hint::black_box(stm_ns_per_op(&stm, ApiMode::Short, kind, size, BATCH))
                })
            });
            group.bench_function(format!("val-full/{}", kind.label()), |b| {
                b.iter(|| {
                    let stm = ValShort::with_config(bench_config());
                    std::hint::black_box(stm_ns_per_op(&stm, ApiMode::Full, kind, size, BATCH))
                })
            });
            group.bench_function(format!("val-short/{}", kind.label()), |b| {
                b.iter(|| {
                    let stm = ValShort::with_config(bench_config());
                    std::hint::black_box(stm_ns_per_op(&stm, ApiMode::Short, kind, size, BATCH))
                })
            });
        }
        group.finish();
    }
}

criterion_group!(micro, fig5);
criterion_main!(micro);
