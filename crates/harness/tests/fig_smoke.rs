//! Smoke tests for the `fig*` binaries: run each compiled binary with a tiny
//! configuration (1 thread, small key range, millisecond points) and check
//! that it exits cleanly and emits well-formed rows.  This keeps the figure
//! pipeline from rotting silently: any driver that panics, hangs or stops
//! printing rows fails here in a few hundred milliseconds.

use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

/// Hard ceiling on one binary's runtime; a deadlocked sweep fails here
/// instead of hanging the whole suite.
const DEADLINE: Duration = Duration::from_secs(60);

/// Arguments that shrink a sweep to a near-instant single-threaded run.
const TINY: &[&str] = &[
    "--threads",
    "1",
    "--duration-ms",
    "5",
    "--runs",
    "1",
    "--key-range",
    "512",
];

/// Runs one binary under a watchdog and validates its TSV output shape,
/// returning the data rows as `(panel, series, x, y)` tuples.
fn run_fig(exe: &str, args: &[&str]) -> Vec<(String, String, f64, f64)> {
    let mut child = Command::new(exe)
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap_or_else(|e| panic!("failed to spawn {exe}: {e}"));
    let deadline = Instant::now() + DEADLINE;
    let status = loop {
        match child.try_wait().expect("wait on fig binary") {
            Some(status) => break status,
            None if Instant::now() >= deadline => {
                child.kill().ok();
                child.wait().ok();
                panic!("{exe} still running after {DEADLINE:?}; killed");
            }
            None => std::thread::sleep(Duration::from_millis(20)),
        }
    };
    let output = child
        .wait_with_output()
        .unwrap_or_else(|e| panic!("failed to collect {exe} output: {e}"));
    assert!(
        status.success(),
        "{exe} exited with {status:?}; stderr:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).expect("fig output must be UTF-8");
    let mut lines = stdout.lines();
    assert_eq!(
        lines.next(),
        Some("figure\tpanel\tseries\tx\ty\thit_rate"),
        "missing TSV header in {exe} output"
    );
    let mut rows = Vec::new();
    for line in lines {
        let fields: Vec<&str> = line.split('\t').collect();
        assert_eq!(fields.len(), 6, "malformed row from {exe}: {line:?}");
        let x = fields[3].parse::<f64>().expect("x must be numeric");
        let y = fields[4].parse::<f64>().expect("y must be numeric");
        if fields[5] != "-" {
            let rate = fields[5].parse::<f64>().expect("hit_rate must be numeric");
            assert!((0.0..=1.0).contains(&rate), "hit_rate out of range: {rate}");
        }
        rows.push((fields[1].to_string(), fields[2].to_string(), x, y));
    }
    assert!(!rows.is_empty(), "{exe} produced a header but no data rows");
    rows
}

#[test]
fn fig1_smoke() {
    run_fig(env!("CARGO_BIN_EXE_fig1"), TINY);
}

#[test]
fn fig5_smoke() {
    // fig5 is single-threaded; it now accepts the common flags and derives
    // its iteration count from the per-point duration.
    run_fig(env!("CARGO_BIN_EXE_fig5"), TINY);
}

#[test]
fn fig5_smoke_quick_flag() {
    run_fig(
        env!("CARGO_BIN_EXE_fig5"),
        &["--quick", "--duration-ms", "5"],
    );
}

#[test]
fn fig6_smoke() {
    run_fig(env!("CARGO_BIN_EXE_fig6"), TINY);
}

#[test]
fn fig7_smoke() {
    run_fig(env!("CARGO_BIN_EXE_fig7"), TINY);
}

#[test]
fn fig8_smoke() {
    run_fig(env!("CARGO_BIN_EXE_fig8"), TINY);
}

#[test]
fn fig9_smoke() {
    run_fig(env!("CARGO_BIN_EXE_fig9"), TINY);
}

#[test]
fn fig10_smoke() {
    run_fig(env!("CARGO_BIN_EXE_fig10"), TINY);
}

/// A verified variable-size run: byte payloads drawn uniformly from
/// 64..=256 bytes (out-of-line value cells), with per-read checksum
/// verification and the post-run oracle sweep enabled — the driver panics
/// (failing the smoke) on any corrupt payload.  The panel label carries the
/// value-size distribution.
#[test]
fn kv_value_size_smoke() {
    let mut args = vec![
        "--workload",
        "a",
        "--dist",
        "zipfian",
        "--value-size",
        "uniform:64..256",
        "--verify",
    ];
    args.extend_from_slice(TINY);
    let rows = run_fig(env!("CARGO_BIN_EXE_kv"), &args);
    for (panel, series, _x, y) in &rows {
        assert_eq!(panel, "update-50/50 / zipfian / uniform:64..256");
        assert!(*y > 0.0, "zero throughput for {series}");
    }
}

/// The KV-store sweep must cover every mix × distribution panel with the
/// short-transaction, BaseTM and lock-free variants, and every data point
/// must report positive throughput (the store really served the workload).
#[test]
fn kv_smoke() {
    let rows = run_fig(env!("CARGO_BIN_EXE_kv"), TINY);
    for (panel, series, _x, y) in &rows {
        assert!(*y > 0.0, "zero throughput for {series} in panel {panel:?}");
    }
    for series in ["val-short", "orec-full-g", "lock-free"] {
        assert!(
            rows.iter().any(|(_, s, _, _)| s == series),
            "missing series {series}"
        );
    }
    for mix in ["read-heavy-95/5", "update-50/50", "rmw-50/50"] {
        for dist in ["uniform", "zipfian", "latest"] {
            let panel = format!("{mix} / {dist}");
            assert!(
                rows.iter().any(|(p, _, _, _)| *p == panel),
                "missing panel {panel:?}"
            );
        }
    }
}
