//! Deterministic eviction-policy comparison on the zipfian read-through
//! churn workload (the acceptance gate of the TTL/eviction work): with a
//! byte budget far below the working set, frequency-byte (CLOCK) eviction
//! must keep the hot keys resident and beat FIFO on hit rate.
//!
//! Everything is driven single-threaded with manual sweep steps instead of
//! the background reclaimer, so both runs are exact replays of the same
//! operation stream and the comparison carries no scheduling noise.

use harness::kv::{fill_payload, KeyDist, KvMix, KvWorkloadConfig, ValueSize, WorkerState};
use spectm::variants::ValShort;
use spectm::Stm;
use spectm_ds::ApiMode;
use spectm_kv::{CacheStats, EvictionPolicy, ShardedKv, ITEM_OVERHEAD_BYTES};

const NUM_KEYS: u64 = 8_192;
const VALUE_LEN: usize = 64;
/// ~1/6 of the working set fits: `NUM_KEYS × (VALUE_LEN + overhead)` is
/// 1.5 MiB against a 256 KiB budget, so eviction runs constantly.
const BUDGET: u64 = 256 * 1024;
const OPS: u64 = 120_000;
/// A sweep step every this many operations bounds the overshoot between
/// sweeps to `SWEEP_EVERY × item_bytes` ≈ 9% of the budget.
const SWEEP_EVERY: u64 = 128;
const SWEEP_BUCKETS: usize = 128;

/// Runs the churn stream once under `policy` and reports the steady-state
/// hit rate (second half of the run, after the resident set has churned to
/// the policy's equilibrium) plus the final counters.
fn churn_run(policy: EvictionPolicy) -> (f64, CacheStats) {
    let stm = ValShort::new();
    let cfg = KvWorkloadConfig {
        mix: KvMix::Churn,
        dist: KeyDist::Zipfian,
        value_size: ValueSize::Fixed(VALUE_LEN),
        max_bytes: Some(BUDGET),
        policy,
        ..KvWorkloadConfig::sized_for(NUM_KEYS)
    };
    // Oversize the tables 8×: sparse buckets make the per-bucket frequency
    // byte track individual keys instead of averaging over ~8 cohabitants,
    // which is what gives the CLOCK policy its signal.
    let store = ShardedKv::with_config(
        &stm,
        cfg.shards,
        cfg.capacity_per_shard * 8,
        ApiMode::Short,
        cfg.cache_config(),
    );
    let mut thread = store.register();
    let mut state = WorkerState::new(&cfg, 0xC0DE_CAFE);
    let mut buf = Vec::new();
    let (mut hits, mut misses) = (0u64, 0u64);
    for i in 0..OPS {
        let key = state.sample_key();
        let raw = state.next_raw();
        match store.get(key, &mut thread) {
            Some(_) => {
                if i >= OPS / 2 {
                    hits += 1;
                }
            }
            None => {
                if i >= OPS / 2 {
                    misses += 1;
                }
                fill_payload(key, raw, VALUE_LEN, &mut buf);
                store
                    .put(key, &buf, &mut thread)
                    .expect("fill payloads are size-bounded");
            }
        }
        if i % SWEEP_EVERY == SWEEP_EVERY - 1 {
            store.sweep_step(SWEEP_BUCKETS, &mut thread);
        }
    }
    // Final full pass at quiescence: afterwards the accounting invariant
    // (live bytes at or under budget) must hold unconditionally.
    store.sweep_step(store.bucket_count(), &mut thread);
    let stats = store.cache_stats();
    (hits as f64 / (hits + misses) as f64, stats)
}

#[test]
fn freq_eviction_beats_fifo_on_zipfian_churn() {
    assert!(
        NUM_KEYS * (VALUE_LEN as u64 + ITEM_OVERHEAD_BYTES) > 4 * BUDGET,
        "the working set must dwarf the budget for the comparison to mean anything"
    );
    let (freq_rate, freq) = churn_run(EvictionPolicy::Freq);
    let (fifo_rate, fifo) = churn_run(EvictionPolicy::Fifo);

    assert!(freq.evicted > 0, "freq run never evicted: {freq:?}");
    assert!(fifo.evicted > 0, "fifo run never evicted: {fifo:?}");
    assert!(
        freq.live_bytes <= BUDGET,
        "freq run over budget after the final sweep: {} > {BUDGET}",
        freq.live_bytes
    );
    assert!(
        fifo.live_bytes <= BUDGET,
        "fifo run over budget after the final sweep: {} > {BUDGET}",
        fifo.live_bytes
    );
    // The margin is deliberately coarse — the claim is "frequency
    // protection visibly helps", not a specific number.
    assert!(
        freq_rate > fifo_rate + 0.02,
        "freq hit rate {freq_rate:.4} must beat fifo {fifo_rate:.4} by more than 2 points"
    );
}
