//! The network load generator: drives a `spectm-serve` server over the
//! batch wire protocol and reports latency percentiles.
//!
//! This is the client half of ROADMAP item 1.  It reuses the in-process
//! workload machinery — [`KvWorkloadConfig`] for the mix, key
//! distribution, value sizes and batch length, [`WorkerState`] for the
//! per-connection operation stream, and the self-certifying checksummed
//! payloads of [`crate::kv::fill_payload`] for `--verify` — so a network
//! run measures the same workload as an in-process `kv` run, plus the
//! wire.
//!
//! Connections are decoupled from client threads (the multiplexing server
//! serves many connections per worker, so the interesting operating points
//! have far more connections than a client machine has cores): each thread
//! drives several [`WireConn`]s round-robin under one of two disciplines
//! (see [`crate::measure`]):
//!
//! * **closed loop** ([`LoadMode::Closed`]) — each connection's next batch
//!   is issued the moment its previous response arrives; a thread
//!   scatter/gathers across its connections (send on every connection,
//!   then collect every response), so all its connections stay in flight
//!   concurrently; latency is response time under maximal client pressure,
//!   with the coordinated-omission caveat;
//! * **open loop** ([`LoadMode::Open`]) — batches are issued on a fixed
//!   per-connection schedule (the thread's rotation runs at `connections ×`
//!   the per-connection rate) and each sample is measured from its
//!   *scheduled* time, so server stalls are charged to every batch that
//!   was due during them.
//!
//! Per-connection histograms merge losslessly into one
//! [`LatencyHistogram`] for the run's p50/p99/p999.  The `kv-loadgen`
//! binary sweeps mixes and modes and prints one TSV row per run.

use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use spectm_kv::wire::{self, FrameError, FrameReader, WireError, MAX_WIRE_OPS};
use spectm_kv::{BatchOp, BatchResponse};

use crate::intset::Xorshift;
use crate::kv::{
    fill_payload, payload_is_valid, KvMix, KvWorkloadConfig, ValueLenSampler, WorkerState,
};
use crate::measure::{drive_open_loop, LatencyHistogram};

/// Everything that can end a load-generation run early.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (connect, send or receive).
    Io(std::io::Error),
    /// The server answered with bytes that violate the protocol.
    Wire(WireError),
    /// The server closed the connection where a response was due.
    ServerClosed,
    /// A response carried the wrong number of results.
    ResultCount {
        /// Operations in the request.
        sent: usize,
        /// Results in the response.
        got: usize,
    },
    /// Under `--verify`, a returned value failed its checksum or a key
    /// that must be present was absent.
    Verify {
        /// The offending key.
        key: u64,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Wire(e) => write!(f, "protocol error: {e}"),
            ClientError::ServerClosed => write!(f, "server closed with a response due"),
            ClientError::ResultCount { sent, got } => {
                write!(f, "sent {sent} operations, got {got} results")
            }
            ClientError::Verify { key } => {
                write!(f, "verification failed for key {key}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Wire(e) => ClientError::Wire(e),
            FrameError::Io(e) => ClientError::Io(e),
        }
    }
}

/// One client connection speaking the batch wire protocol, with every
/// buffer reused across requests (zero steady-state allocations for
/// inline-sized values).
pub struct WireConn {
    stream: TcpStream,
    reader: FrameReader,
    out: Vec<u8>,
    resp: BatchResponse,
}

impl WireConn {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            reader: FrameReader::new(),
            out: Vec::new(),
            resp: BatchResponse::new(),
        })
    }

    /// Sends `ops` as one request frame and blocks for the response;
    /// returns the results in request order.
    pub fn execute(&mut self, ops: &[BatchOp]) -> Result<&BatchResponse, ClientError> {
        self.send(ops)?;
        self.recv(ops.len())
    }

    /// Sends `ops` as one request frame **without waiting** for the
    /// response — the scatter half of a pipelined client; pair each call
    /// with a [`WireConn::recv`] (responses arrive in request order).
    pub fn send(&mut self, ops: &[BatchOp]) -> Result<(), ClientError> {
        wire::encode_request(ops, &mut self.out)?;
        self.stream.write_all(&self.out)?;
        Ok(())
    }

    /// Blocks for the next response frame, checking it carries `expected`
    /// results — the gather half of a pipelined client.
    pub fn recv(&mut self, expected: usize) -> Result<&BatchResponse, ClientError> {
        match wire::read_frame(&mut self.reader, &mut self.stream)? {
            Some((start, end)) => {
                wire::decode_response(&self.reader.buffered()[start..end], &mut self.resp)?;
                if self.resp.len() != expected {
                    return Err(ClientError::ResultCount {
                        sent: expected,
                        got: self.resp.len(),
                    });
                }
                Ok(&self.resp)
            }
            None => Err(ClientError::ServerClosed),
        }
    }

    /// Applies (or clears) a read timeout on the underlying socket, so a
    /// test can bound how long a [`WireConn::recv`] may wait.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }
}

/// Loads every key of `0..num_keys` with a checksummed payload over the
/// wire, [`MAX_WIRE_OPS`] puts per batch — the network counterpart of
/// [`crate::kv::load_keys`], same payloads and length stream.
pub fn preload(conn: &mut WireConn, cfg: &KvWorkloadConfig) -> Result<(), ClientError> {
    let lens = ValueLenSampler::new(cfg.value_size);
    let mut rng = Xorshift::new(0x10AD_5EED);
    let mut buf = Vec::with_capacity(cfg.value_size.max_len());
    let mut ops = Vec::with_capacity(MAX_WIRE_OPS);
    for key in 0..cfg.num_keys {
        fill_payload(key, 0, lens.sample(&mut rng), &mut buf);
        ops.push(BatchOp::put(key, &buf));
        if ops.len() == MAX_WIRE_OPS {
            conn.execute(&ops)?;
            ops.clear();
        }
    }
    if !ops.is_empty() {
        conn.execute(&ops)?;
    }
    Ok(())
}

/// Reads the whole key space back in batched gets and checks presence and
/// checksums — the final oracle sweep of a `--verify` run.
pub fn verify_sweep(conn: &mut WireConn, num_keys: u64) -> Result<(), ClientError> {
    let mut ops = Vec::with_capacity(MAX_WIRE_OPS);
    let mut start = 0u64;
    while start < num_keys {
        let end = (start + MAX_WIRE_OPS as u64).min(num_keys);
        ops.clear();
        ops.extend((start..end).map(BatchOp::Get));
        let results = conn.execute(&ops)?;
        for (key, result) in (start..end).zip(results) {
            match result {
                Some(value) if payload_is_valid(key, value) => {}
                _ => return Err(ClientError::Verify { key }),
            }
        }
        start = end;
    }
    Ok(())
}

/// The load-generation discipline of one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// Issue the next batch as soon as the previous response arrives.
    Closed,
    /// Issue batches on a fixed schedule, one per `interval` per
    /// connection, measuring from the scheduled time (coordinated
    /// omission measured, not hidden).
    Open {
        /// The per-connection inter-batch interval.
        interval: Duration,
    },
}

/// Parameters of one load-generation run.
pub struct LoadgenConfig {
    /// Concurrent connections, dealt round-robin across the client
    /// threads.
    pub connections: usize,
    /// Client threads driving those connections (`0` means one thread per
    /// connection; more threads than connections is clamped down).
    pub threads: usize,
    /// The measured duration (open-loop backlogs drain past it).
    pub duration: Duration,
    /// The discipline.
    pub mode: LoadMode,
    /// The workload: mix, key distribution, value sizes, batch length,
    /// key-space size and the per-batch verify flag.  (The store-shape
    /// fields — shards, capacity, threads — belong to the server.)
    pub workload: KvWorkloadConfig,
}

/// The merged outcome of one run.
pub struct LoadgenResult {
    /// Batches completed across all connections.
    pub batches: u64,
    /// Operations inside those batches.
    pub ops: u64,
    /// Get operations that returned a value.
    pub hits: u64,
    /// Get operations that returned nothing (absent, expired or evicted
    /// server-side).
    pub misses: u64,
    /// Wall-clock time of the run (first connect to last drain).
    pub elapsed: Duration,
    /// Per-batch latency over all connections.
    pub hist: LatencyHistogram,
}

impl LoadgenResult {
    /// Aggregate operation throughput in operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.ops as f64 / self.elapsed.as_secs_f64()
        }
    }

    /// `hits / (hits + misses)` over the run's gets, or `None` when the
    /// mix issued none.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }
}

/// One of a client thread's connections: its socket plus its own seeded
/// operation stream, so a connection's workload is a deterministic
/// function of its **global connection index** — independent of how
/// connections are dealt across threads.
struct ClientConn {
    conn: WireConn,
    state: WorkerState,
    /// Keys whose gets missed, awaiting a read-through fill in this
    /// connection's next batch (churn mix only).
    fills: Vec<u64>,
}

/// Per-thread hit/miss tally over get results.
#[derive(Default)]
struct HitCounts {
    hits: u64,
    misses: u64,
}

/// Post-processes one batch response: tallies get hits and misses,
/// queues missed keys for read-through fills (churn), and — under
/// `--verify` — checks checksums.  A churn get may legitimately miss
/// (that is the point of the mix), so only present values are verified
/// there; every other mix keeps the strict all-hits oracle.
fn account_batch(
    ops: &[BatchOp],
    results: &BatchResponse,
    verify: bool,
    churn: bool,
    counts: &mut HitCounts,
    fills: &mut Vec<u64>,
) -> Result<(), ClientError> {
    for (op, result) in ops.iter().zip(results) {
        let key = op.key();
        let is_get = matches!(op, BatchOp::Get(_));
        match result {
            Some(value) => {
                if is_get {
                    counts.hits += 1;
                }
                if verify && !payload_is_valid(key, value) {
                    return Err(ClientError::Verify { key });
                }
            }
            None => {
                if is_get {
                    counts.misses += 1;
                    if churn {
                        fills.push(key);
                    } else if verify {
                        // Over a preloaded, delete-free space every get
                        // must hit; a put's displaced value must exist too.
                        return Err(ClientError::Verify { key });
                    }
                } else if verify && !churn {
                    return Err(ClientError::Verify { key });
                }
            }
        }
    }
    Ok(())
}

/// The canonical per-connection seed (connection `cid` of a run issues
/// the same operation stream whether it is one thread's only connection
/// or one of thirty-two).
fn conn_seed(cid: usize) -> u64 {
    0xC0FF_EE00_0000_0000 ^ (cid as u64 + 1).wrapping_mul(0x9E37_79B9)
}

/// Runs one client thread over its share of the run's connections
/// (`tid`, `tid + threads`, `tid + 2·threads`, … — a strided deal), per
/// the configured discipline, returning its histogram and batch count.
fn run_client_thread(
    addr: std::net::SocketAddr,
    cfg: &LoadgenConfig,
    tid: usize,
    threads: usize,
    batch: usize,
) -> Result<(LatencyHistogram, u64, HitCounts), ClientError> {
    let mut clients = (tid..cfg.connections.max(1))
        .step_by(threads)
        .map(|cid| {
            Ok(ClientConn {
                conn: WireConn::connect(addr)?,
                state: WorkerState::new(&cfg.workload, conn_seed(cid)),
                fills: Vec::new(),
            })
        })
        .collect::<Result<Vec<ClientConn>, ClientError>>()?;
    let mut hist = LatencyHistogram::new();
    let mut counts = HitCounts::default();
    let verify = cfg.workload.verify;
    let churn = cfg.workload.mix == KvMix::Churn;
    let ttl_ms = cfg.workload.default_ttl_ms;
    let build = |client: &mut ClientConn, n: usize| {
        if churn {
            client.state.build_churn_batch(n, &mut client.fills, ttl_ms);
        } else {
            client.state.build_batch(n);
        }
    };
    let t0 = Instant::now();
    match cfg.mode {
        // Pipelined closed loop: scatter one batch onto every connection,
        // then gather every response, so all of this thread's connections
        // are in flight at once — the whole point of measuring connection
        // counts beyond the client's core count.  Latency is per
        // connection, send to response.
        LoadMode::Closed => {
            let mut batches = 0u64;
            let mut sent_at = vec![Duration::ZERO; clients.len()];
            loop {
                for (i, client) in clients.iter_mut().enumerate() {
                    build(client, batch);
                    sent_at[i] = t0.elapsed();
                    client.conn.send(client.state.batch_ops())?;
                }
                let mut now = Duration::ZERO;
                for (i, client) in clients.iter_mut().enumerate() {
                    let results = client.conn.recv(client.state.batch_ops().len())?;
                    account_batch(
                        client.state.batch_ops(),
                        results,
                        verify,
                        churn,
                        &mut counts,
                        &mut client.fills,
                    )?;
                    now = t0.elapsed();
                    hist.record(now.saturating_sub(sent_at[i]));
                    batches += 1;
                }
                if now >= cfg.duration {
                    return Ok((hist, batches, counts));
                }
            }
        }
        // Open loop: one shared schedule rotating round-robin across this
        // thread's connections, `connections ×` the per-connection rate, so
        // every connection still sees its own `interval`.  Failures latch:
        // the schedule finishes as no-ops so coordinated-omission
        // accounting stays honest, then the error surfaces.
        LoadMode::Open { interval } => {
            let clock = move || t0.elapsed();
            let mut failed: Option<ClientError> = None;
            let mut next = 0usize;
            let rotated = interval / clients.len().max(1) as u32;
            let mut op = || {
                if failed.is_some() {
                    return; // latch: finish the schedule as no-ops
                }
                let rotation = clients.len().max(1);
                let client = &mut clients[next];
                next = (next + 1) % rotation;
                build(client, batch);
                match client.conn.execute(client.state.batch_ops()) {
                    Ok(results) => {
                        if let Err(e) = account_batch(
                            client.state.batch_ops(),
                            results,
                            verify,
                            churn,
                            &mut counts,
                            &mut client.fills,
                        ) {
                            failed = Some(e);
                        }
                    }
                    Err(e) => failed = Some(e),
                }
            };
            let batches = drive_open_loop(
                &clock,
                &|target: Duration| {
                    let now = clock();
                    if target > now {
                        std::thread::sleep(target - now);
                    }
                },
                cfg.duration,
                rotated,
                &mut op,
                &mut hist,
            );
            match failed {
                Some(e) => Err(e),
                None => Ok((hist, batches, counts)),
            }
        }
    }
}

/// Runs one load-generation pass against `addr`: `threads` client threads
/// drive `connections` [`WireConn`]s round-robin, each connection with its
/// own seeded [`WorkerState`] stream; per-thread latency histograms merge
/// on completion.  The key space must already be [`preload`]ed when the
/// workload verifies.
pub fn run_loadgen(
    addr: impl ToSocketAddrs,
    cfg: &LoadgenConfig,
) -> Result<LoadgenResult, ClientError> {
    let addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or(ClientError::ServerClosed)?;
    let batch = cfg.workload.batch.max(1);
    let connections = cfg.connections.max(1);
    let threads = if cfg.threads == 0 {
        connections
    } else {
        cfg.threads.min(connections)
    };
    let started = Instant::now();
    let per_thread: Vec<Result<(LatencyHistogram, u64, HitCounts), ClientError>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|tid| scope.spawn(move || run_client_thread(addr, cfg, tid, threads, batch)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("loadgen client thread panicked"))
                .collect()
        });
    let mut hist = LatencyHistogram::new();
    let mut batches = 0u64;
    let mut hits = 0u64;
    let mut misses = 0u64;
    for outcome in per_thread {
        let (thread_hist, thread_batches, counts) = outcome?;
        hist.merge(&thread_hist);
        batches += thread_batches;
        hits += counts.hits;
        misses += counts.misses;
    }
    Ok(LoadgenResult {
        batches,
        ops: batches * batch as u64,
        hits,
        misses,
        elapsed: started.elapsed(),
        hist,
    })
}
