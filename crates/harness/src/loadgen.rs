//! The network load generator: drives a `spectm-serve` server over the
//! batch wire protocol and reports latency percentiles.
//!
//! This is the client half of ROADMAP item 1.  It reuses the in-process
//! workload machinery — [`KvWorkloadConfig`] for the mix, key
//! distribution, value sizes and batch length, [`WorkerState`] for the
//! per-connection operation stream, and the self-certifying checksummed
//! payloads of [`crate::kv::fill_payload`] for `--verify` — so a network
//! run measures the same workload as an in-process `kv` run, plus the
//! wire.
//!
//! Each connection is one client thread running one of two disciplines
//! (see [`crate::measure`]):
//!
//! * **closed loop** ([`LoadMode::Closed`]) — the next batch is issued
//!   the moment the previous response arrives; latency is response time
//!   under maximal client pressure, with the coordinated-omission caveat;
//! * **open loop** ([`LoadMode::Open`]) — batches are issued on a fixed
//!   schedule and each sample is measured from its *scheduled* time, so
//!   server stalls are charged to every batch that was due during them.
//!
//! Per-connection histograms merge losslessly into one
//! [`LatencyHistogram`] for the run's p50/p99/p999.  The `kv-loadgen`
//! binary sweeps mixes and modes and prints one TSV row per run.

use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use spectm_kv::wire::{self, FrameError, FrameReader, WireError, MAX_WIRE_OPS};
use spectm_kv::{BatchOp, BatchResponse};

use crate::intset::Xorshift;
use crate::kv::{fill_payload, payload_is_valid, KvWorkloadConfig, ValueLenSampler, WorkerState};
use crate::measure::{drive_closed_loop, drive_open_loop, LatencyHistogram};

/// Everything that can end a load-generation run early.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (connect, send or receive).
    Io(std::io::Error),
    /// The server answered with bytes that violate the protocol.
    Wire(WireError),
    /// The server closed the connection where a response was due.
    ServerClosed,
    /// A response carried the wrong number of results.
    ResultCount {
        /// Operations in the request.
        sent: usize,
        /// Results in the response.
        got: usize,
    },
    /// Under `--verify`, a returned value failed its checksum or a key
    /// that must be present was absent.
    Verify {
        /// The offending key.
        key: u64,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Wire(e) => write!(f, "protocol error: {e}"),
            ClientError::ServerClosed => write!(f, "server closed with a response due"),
            ClientError::ResultCount { sent, got } => {
                write!(f, "sent {sent} operations, got {got} results")
            }
            ClientError::Verify { key } => {
                write!(f, "verification failed for key {key}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Wire(e) => ClientError::Wire(e),
            FrameError::Io(e) => ClientError::Io(e),
        }
    }
}

/// One client connection speaking the batch wire protocol, with every
/// buffer reused across requests (zero steady-state allocations for
/// inline-sized values).
pub struct WireConn {
    stream: TcpStream,
    reader: FrameReader,
    out: Vec<u8>,
    resp: BatchResponse,
}

impl WireConn {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            reader: FrameReader::new(),
            out: Vec::new(),
            resp: BatchResponse::new(),
        })
    }

    /// Sends `ops` as one request frame and blocks for the response;
    /// returns the results in request order.
    pub fn execute(&mut self, ops: &[BatchOp]) -> Result<&BatchResponse, ClientError> {
        wire::encode_request(ops, &mut self.out)?;
        self.stream.write_all(&self.out)?;
        match wire::read_frame(&mut self.reader, &mut self.stream)? {
            Some((start, end)) => {
                wire::decode_response(&self.reader.buffered()[start..end], &mut self.resp)?;
                if self.resp.len() != ops.len() {
                    return Err(ClientError::ResultCount {
                        sent: ops.len(),
                        got: self.resp.len(),
                    });
                }
                Ok(&self.resp)
            }
            None => Err(ClientError::ServerClosed),
        }
    }
}

/// Checks a batch's results against its operations: every returned value
/// must carry a valid checksum for its key, and — once the key space is
/// preloaded and the mix never deletes — every get must hit.
fn verify_results(ops: &[BatchOp], results: &BatchResponse) -> Result<(), ClientError> {
    for (op, result) in ops.iter().zip(results) {
        let key = op.key();
        match result {
            Some(value) => {
                if !payload_is_valid(key, value) {
                    return Err(ClientError::Verify { key });
                }
            }
            // A put's result is the displaced value; a get's is the stored
            // one.  Both must exist over a preloaded, delete-free space.
            None => return Err(ClientError::Verify { key }),
        }
    }
    Ok(())
}

/// Loads every key of `0..num_keys` with a checksummed payload over the
/// wire, [`MAX_WIRE_OPS`] puts per batch — the network counterpart of
/// [`crate::kv::load_keys`], same payloads and length stream.
pub fn preload(conn: &mut WireConn, cfg: &KvWorkloadConfig) -> Result<(), ClientError> {
    let lens = ValueLenSampler::new(cfg.value_size);
    let mut rng = Xorshift::new(0x10AD_5EED);
    let mut buf = Vec::with_capacity(cfg.value_size.max_len());
    let mut ops = Vec::with_capacity(MAX_WIRE_OPS);
    for key in 0..cfg.num_keys {
        fill_payload(key, 0, lens.sample(&mut rng), &mut buf);
        ops.push(BatchOp::put(key, &buf));
        if ops.len() == MAX_WIRE_OPS {
            conn.execute(&ops)?;
            ops.clear();
        }
    }
    if !ops.is_empty() {
        conn.execute(&ops)?;
    }
    Ok(())
}

/// Reads the whole key space back in batched gets and checks presence and
/// checksums — the final oracle sweep of a `--verify` run.
pub fn verify_sweep(conn: &mut WireConn, num_keys: u64) -> Result<(), ClientError> {
    let mut ops = Vec::with_capacity(MAX_WIRE_OPS);
    let mut start = 0u64;
    while start < num_keys {
        let end = (start + MAX_WIRE_OPS as u64).min(num_keys);
        ops.clear();
        ops.extend((start..end).map(BatchOp::Get));
        let results = conn.execute(&ops)?;
        for (key, result) in (start..end).zip(results) {
            match result {
                Some(value) if payload_is_valid(key, value) => {}
                _ => return Err(ClientError::Verify { key }),
            }
        }
        start = end;
    }
    Ok(())
}

/// The load-generation discipline of one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// Issue the next batch as soon as the previous response arrives.
    Closed,
    /// Issue batches on a fixed schedule, one per `interval` per
    /// connection, measuring from the scheduled time (coordinated
    /// omission measured, not hidden).
    Open {
        /// The per-connection inter-batch interval.
        interval: Duration,
    },
}

/// Parameters of one load-generation run.
pub struct LoadgenConfig {
    /// Concurrent connections, one client thread each.
    pub connections: usize,
    /// The measured duration (open-loop backlogs drain past it).
    pub duration: Duration,
    /// The discipline.
    pub mode: LoadMode,
    /// The workload: mix, key distribution, value sizes, batch length,
    /// key-space size and the per-batch verify flag.  (The store-shape
    /// fields — shards, capacity, threads — belong to the server.)
    pub workload: KvWorkloadConfig,
}

/// The merged outcome of one run.
pub struct LoadgenResult {
    /// Batches completed across all connections.
    pub batches: u64,
    /// Operations inside those batches.
    pub ops: u64,
    /// Wall-clock time of the run (first connect to last drain).
    pub elapsed: Duration,
    /// Per-batch latency over all connections.
    pub hist: LatencyHistogram,
}

impl LoadgenResult {
    /// Aggregate operation throughput in operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.ops as f64 / self.elapsed.as_secs_f64()
        }
    }
}

/// Runs one load-generation pass against `addr`: `connections` client
/// threads, each with its own [`WireConn`], seeded [`WorkerState`] stream
/// and latency histogram, merged on completion.  The key space must
/// already be [`preload`]ed when the workload verifies.
pub fn run_loadgen(
    addr: impl ToSocketAddrs,
    cfg: &LoadgenConfig,
) -> Result<LoadgenResult, ClientError> {
    let addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or(ClientError::ServerClosed)?;
    let batch = cfg.workload.batch.max(1);
    let started = Instant::now();
    let per_conn: Vec<Result<(LatencyHistogram, u64), ClientError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.connections.max(1))
            .map(|tid| {
                scope.spawn(move || {
                    let mut conn = WireConn::connect(addr)?;
                    let mut state = WorkerState::new(
                        &cfg.workload,
                        0xC0FF_EE00_0000_0000 ^ (tid as u64 + 1).wrapping_mul(0x9E37_79B9),
                    );
                    let mut hist = LatencyHistogram::new();
                    let verify = cfg.workload.verify;
                    let mut failed: Option<ClientError> = None;
                    let mut op = || {
                        if failed.is_some() {
                            return; // latch: finish the schedule as no-ops
                        }
                        state.build_batch(batch);
                        match conn.execute(state.batch_ops()) {
                            Ok(results) => {
                                if verify {
                                    if let Err(e) = verify_results(state.batch_ops(), results) {
                                        failed = Some(e);
                                    }
                                }
                            }
                            Err(e) => failed = Some(e),
                        }
                    };
                    let t0 = Instant::now();
                    let clock = move || t0.elapsed();
                    let batches = match cfg.mode {
                        LoadMode::Closed => {
                            drive_closed_loop(&clock, cfg.duration, &mut op, &mut hist)
                        }
                        LoadMode::Open { interval } => drive_open_loop(
                            &clock,
                            &|target: Duration| {
                                let now = clock();
                                if target > now {
                                    std::thread::sleep(target - now);
                                }
                            },
                            cfg.duration,
                            interval,
                            &mut op,
                            &mut hist,
                        ),
                    };
                    match failed {
                        Some(e) => Err(e),
                        None => Ok((hist, batches)),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen connection thread panicked"))
            .collect()
    });
    let mut hist = LatencyHistogram::new();
    let mut batches = 0u64;
    for outcome in per_conn {
        let (conn_hist, conn_batches) = outcome?;
        hist.merge(&conn_hist);
        batches += conn_batches;
    }
    Ok(LoadgenResult {
        batches,
        ops: batches * batch as u64,
        elapsed: started.elapsed(),
        hist,
    })
}
