//! YCSB-style workload driver for the sharded transactional KV store.
//!
//! Where [`crate::intset`] reproduces the paper's microbenchmarks, this
//! module stresses the same STM variants through a *service-level* shape:
//! the sharded `u64 -> bytes` store of the `spectm-kv` crate, driven by the
//! standard key-value mixes (read-heavy 95/5, update 50/50, read-only, a
//! read-modify-write mix whose multi-key updates compose across shards, and
//! a scan-heavy YCSB-E mix of short range scans plus fresh inserts), by
//! skewed key-popularity distributions (zipfian and latest) next to the
//! uniform draw of the microbenchmarks, and by YCSB-style **value-size
//! distributions** ([`ValueSize`]: fixed, uniform or zipfian payload
//! lengths).  EXPERIMENTS.md maps the mixes to their YCSB counterparts.
//!
//! Every written payload is *self-certifying* — deterministic filler ending
//! in a checksum over the bytes and the key ([`fill_payload`] /
//! [`payload_is_valid`]) — so the driver's verify mode replays an oracle
//! check over everything it reads: any torn, stale-beyond-serializability
//! or corrupted payload fails loudly instead of skewing a throughput
//! number.
//!
//! Everything is generic over [`KvStore`], so the STM-backed store and the
//! CAS-based [`lockfree::LockFreeKvMap`] baseline run the identical driver,
//! and [`run_kv_variant`] accepts the same [`VariantSpec`] labels the figure
//! drivers use.  Measurement uses the per-thread windows of
//! [`crate::measure`].

use std::sync::Arc;
use std::time::Duration;

use lockfree::LockFreeKvMap;
use serde::Serialize;
use spectm::variants::{OrecStm, TvarStm, ValShort};
use spectm::Stm;
use spectm_kv::{
    BatchOp, BatchRequest, BatchResponse, CacheConfig, CacheStats, EvictionPolicy, MapStats,
    Reclaimer, ShardedKv, Value,
};
use txepoch::Collector;

use crate::intset::{RunResult, Xorshift, BATCH_OPS};
use crate::measure::run_timed;
use crate::variants::{bench_config, Layout, VariantSpec};

/// A key-value store as seen by the workload driver.
///
/// `ThreadCtx` carries the per-thread state (an STM thread handle or an
/// epoch handle) and is created on the worker thread itself.  Values are
/// byte payloads; the driver never exceeds [`spectm_kv::MAX_VALUE_LEN`], so
/// adapters unwrap the stores' size errors.
pub trait KvStore: Send + Sync + 'static {
    /// Per-worker-thread context.
    type ThreadCtx;

    /// Creates the calling thread's context.
    fn thread_ctx(&self) -> Self::ThreadCtx;
    /// Returns the value stored under `key`.
    fn get(&self, key: u64, ctx: &mut Self::ThreadCtx) -> Option<Value>;
    /// Stores `value` under `key`, returning the previous value if present.
    fn put(&self, key: u64, value: &[u8], ctx: &mut Self::ThreadCtx) -> Option<Value>;
    /// Stores `value` under `key` with an explicit TTL in milliseconds
    /// (`0` = never expires).  Stores without TTL machinery fall back to a
    /// plain put — the honest baseline, since expiry costs them nothing.
    fn put_ttl(
        &self,
        key: u64,
        value: &[u8],
        _ttl_ms: u64,
        ctx: &mut Self::ThreadCtx,
    ) -> Option<Value> {
        self.put(key, value, ctx)
    }
    /// Removes `key`, returning the value it held.
    fn del(&self, key: u64, ctx: &mut Self::ThreadCtx) -> Option<Value>;
    /// Adds `delta` to every key in `keys` (values as 8-byte little-endian
    /// counters).  Atomic across keys for the STM store; per-key atomic only
    /// for the lock-free baseline.
    fn rmw_add(&self, keys: &[u64], delta: u64, ctx: &mut Self::ThreadCtx) -> bool;
    /// Returns up to `limit` `(key, value)` pairs with `key >= start` in
    /// ascending key order.  An atomically consistent snapshot for the STM
    /// store; a best-effort (tearable) walk for the lock-free baseline.
    fn scan(&self, start: u64, limit: usize, ctx: &mut Self::ThreadCtx) -> Vec<(u64, Value)>;
    /// Executes the request as one batch, writing each operation's result
    /// (the stored value for a get, the displaced previous value for a put
    /// or delete) to its request position in `out` (cleared first).  The
    /// request is `&mut` so stores can use its internal scratch buffers;
    /// its operation list is left untouched.
    ///
    /// Both stores provide a native batch path (per-shard pipelining under
    /// one epoch entry for the STM store, a single pin for the lock-free
    /// baseline); the default implementation is the unamortized per-op
    /// loop, so any other adapter still serves `--batch` runs.
    fn execute_batch(
        &self,
        req: &mut BatchRequest,
        out: &mut BatchResponse,
        ctx: &mut Self::ThreadCtx,
    ) {
        out.clear();
        for op in req.ops() {
            out.push(match op {
                BatchOp::Get(key) => self.get(*key, ctx),
                BatchOp::Put(key, value) => self.put(*key, value, ctx),
                BatchOp::PutTtl(key, value, ttl_ms) => self.put_ttl(*key, value, *ttl_ms, ctx),
                BatchOp::Del(key) => self.del(*key, ctx),
            });
        }
    }
    /// Whether the implementation is safe to drive from multiple threads.
    fn supports_concurrency(&self) -> bool {
        true
    }
    /// Snapshot of the store's cache counters, when it maintains them
    /// (`None` for stores without TTL machinery, and for stores whose
    /// configuration keeps cache behaviour off).
    fn cache_stats(&self) -> Option<CacheStats> {
        None
    }
    /// Starts the store's background reclaimer when its configuration
    /// enables cache behaviour; the handle stops the thread on drop.
    /// `None` when there is nothing to sweep.
    fn spawn_reclaimer(&self) -> Option<Reclaimer> {
        None
    }
    /// Occupancy and probe-length statistics of the store's hash table(s),
    /// when the implementation exposes them (both bundled stores do).
    /// Non-transactional — call only when no concurrent operations run.
    fn stats(&self) -> Option<MapStats> {
        None
    }
}

/// [`KvStore`] adapter for the sharded STM store.
pub struct StmKvBench<S: Stm + Clone> {
    store: Arc<ShardedKv<S>>,
}

impl<S: Stm + Clone> StmKvBench<S> {
    /// Builds a store with `shards` shards, each sized for about
    /// `capacity_per_shard` keys (the hint `StmHashMap::new` sizes its
    /// bucket array from), over `stm`, driven in `mode`.
    pub fn new(stm: S, shards: usize, capacity_per_shard: usize, mode: spectm_ds::ApiMode) -> Self {
        Self::with_cache(
            stm,
            shards,
            capacity_per_shard,
            mode,
            CacheConfig::default(),
        )
    }

    /// [`StmKvBench::new`] with an explicit cache configuration (byte
    /// budget, default TTL, eviction policy) — the cache-mode panels.
    pub fn with_cache(
        stm: S,
        shards: usize,
        capacity_per_shard: usize,
        mode: spectm_ds::ApiMode,
        config: CacheConfig,
    ) -> Self {
        Self {
            store: Arc::new(ShardedKv::with_config(
                &stm,
                shards,
                capacity_per_shard,
                mode,
                config,
            )),
        }
    }

    /// The wrapped store.
    pub fn store(&self) -> &ShardedKv<S> {
        &self.store
    }

    /// Whether the wrapped store maintains cache counters.
    fn cache_enabled(&self) -> bool {
        self.store.config().max_bytes.is_some() || self.store.config().default_ttl_ms > 0
    }
}

impl<S: Stm + Clone> KvStore for StmKvBench<S> {
    type ThreadCtx = S::Thread;

    fn thread_ctx(&self) -> Self::ThreadCtx {
        self.store.register()
    }

    fn get(&self, key: u64, ctx: &mut Self::ThreadCtx) -> Option<Value> {
        self.store.get(key, ctx)
    }

    fn put(&self, key: u64, value: &[u8], ctx: &mut Self::ThreadCtx) -> Option<Value> {
        self.store
            .put(key, value, ctx)
            .expect("driver payloads are size-bounded")
    }

    fn put_ttl(
        &self,
        key: u64,
        value: &[u8],
        ttl_ms: u64,
        ctx: &mut Self::ThreadCtx,
    ) -> Option<Value> {
        self.store
            .put_with_ttl(key, value, Some(ttl_ms), ctx)
            .expect("driver payloads are size-bounded")
    }

    fn del(&self, key: u64, ctx: &mut Self::ThreadCtx) -> Option<Value> {
        self.store.del(key, ctx)
    }

    fn rmw_add(&self, keys: &[u64], delta: u64, ctx: &mut Self::ThreadCtx) -> bool {
        self.store
            .rmw_add(keys, delta, ctx)
            .expect("driver key counts are bounded")
    }

    fn scan(&self, start: u64, limit: usize, ctx: &mut Self::ThreadCtx) -> Vec<(u64, Value)> {
        self.store.scan(start, limit, ctx)
    }

    fn execute_batch(
        &self,
        req: &mut BatchRequest,
        out: &mut BatchResponse,
        ctx: &mut Self::ThreadCtx,
    ) {
        self.store
            .execute_batch_into(req, out, ctx)
            .expect("driver payloads are size-bounded")
    }

    fn stats(&self) -> Option<MapStats> {
        Some(self.store.stats())
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        self.cache_enabled().then(|| self.store.cache_stats())
    }

    fn spawn_reclaimer(&self) -> Option<Reclaimer> {
        self.cache_enabled().then(|| {
            Reclaimer::spawn(
                Arc::clone(&self.store),
                Duration::from_millis(2),
                (self.store.bucket_count() / 8).max(64),
            )
        })
    }
}

/// [`KvStore`] adapter for the lock-free baseline.
pub struct LockFreeKvBench {
    inner: Arc<LockFreeKvMap>,
}

impl LockFreeKvBench {
    /// Wraps a lock-free KV map.
    pub fn new(inner: LockFreeKvMap) -> Self {
        Self {
            inner: Arc::new(inner),
        }
    }
}

impl KvStore for LockFreeKvBench {
    type ThreadCtx = txepoch::LocalHandle;

    fn thread_ctx(&self) -> Self::ThreadCtx {
        self.inner.collector().register()
    }

    fn get(&self, key: u64, ctx: &mut Self::ThreadCtx) -> Option<Value> {
        self.inner.get(key, ctx)
    }

    fn put(&self, key: u64, value: &[u8], ctx: &mut Self::ThreadCtx) -> Option<Value> {
        self.inner
            .put(key, value, ctx)
            .expect("driver payloads are size-bounded")
    }

    fn del(&self, key: u64, ctx: &mut Self::ThreadCtx) -> Option<Value> {
        self.inner.del(key, ctx)
    }

    fn rmw_add(&self, keys: &[u64], delta: u64, ctx: &mut Self::ThreadCtx) -> bool {
        self.inner.rmw_add(keys, delta, ctx)
    }

    fn scan(&self, start: u64, limit: usize, ctx: &mut Self::ThreadCtx) -> Vec<(u64, Value)> {
        self.inner.scan(start, limit, ctx)
    }

    fn execute_batch(
        &self,
        req: &mut BatchRequest,
        out: &mut BatchResponse,
        ctx: &mut Self::ThreadCtx,
    ) {
        self.inner
            .execute_batch_into(req.ops(), out, ctx)
            .expect("driver payloads are size-bounded")
    }

    fn stats(&self) -> Option<MapStats> {
        let handle = self.inner.collector().register();
        Some(self.inner.stats(&handle))
    }
}

// ---------------------------------------------------------------------------
// Operation mixes and key distributions
// ---------------------------------------------------------------------------

/// Operation mix of a KV workload (labels follow the YCSB core workloads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum KvMix {
    /// 95% reads / 5% writes (YCSB-B).
    ReadHeavy,
    /// 50% reads / 50% writes (YCSB-A).
    UpdateHeavy,
    /// 100% reads (YCSB-C).
    ReadOnly,
    /// 95% short range scans / 5% inserts of fresh keys (YCSB-E).  Scan
    /// lengths are zipfian-drawn from `1..=`[`MAX_SCAN_LEN`]; inserts land
    /// in the extension region above the loaded key space (see
    /// [`ScanParams`]).
    ScanHeavy,
    /// 50% reads / 50% multi-key read-modify-writes (YCSB-F, generalized to
    /// [`KvWorkloadConfig::rmw_keys`] keys so updates span shards).
    ReadModifyWrite,
    /// Read-through cache churn (no YCSB counterpart): every operation is a
    /// get, and a miss refills the key with a fresh payload — the
    /// look-aside-cache pattern.  Pointful when the store runs under a byte
    /// budget smaller than the working set
    /// ([`KvWorkloadConfig::max_bytes`]): eviction makes misses, refills
    /// make eviction pressure, and the steady-state hit rate measures how
    /// well victim selection protects the popular keys.
    Churn,
}

impl KvMix {
    /// Label used in the TSV panel column.
    pub fn label(self) -> &'static str {
        match self {
            KvMix::ReadHeavy => "read-heavy-95/5",
            KvMix::UpdateHeavy => "update-50/50",
            KvMix::ReadOnly => "read-only-100",
            KvMix::ScanHeavy => "scan-heavy-95/5",
            KvMix::ReadModifyWrite => "rmw-50/50",
            KvMix::Churn => "churn-read-through",
        }
    }

    /// Percentage of operations that are plain point reads.  Zero for the
    /// scan mix: its dispatch (scan vs insert) happens before this split,
    /// in [`perform_op`].
    pub fn read_pct(self) -> u32 {
        match self {
            KvMix::ReadHeavy => 95,
            KvMix::UpdateHeavy | KvMix::ReadModifyWrite => 50,
            KvMix::ReadOnly => 100,
            // Churn and scans dispatch before this split, in `perform_op`.
            KvMix::ScanHeavy | KvMix::Churn => 0,
        }
    }

    /// Whether the mix consists purely of point gets and puts — the shape
    /// the batched pipeline serves.  Scans and multi-key RMWs are whole
    /// multi-key operations of their own and do not batch.
    pub fn supports_batching(self) -> bool {
        matches!(
            self,
            KvMix::ReadHeavy | KvMix::UpdateHeavy | KvMix::ReadOnly
        )
    }

    /// The workload letter of the mix — the YCSB core-workload letter
    /// where one exists, `x` for the churn extension; the inverse of
    /// [`KvMix::from_ycsb_letter`], used in compact reports like the
    /// `kv-loadgen` TSV.
    pub fn ycsb_letter(self) -> char {
        match self {
            KvMix::UpdateHeavy => 'a',
            KvMix::ReadHeavy => 'b',
            KvMix::ReadOnly => 'c',
            KvMix::ScanHeavy => 'e',
            KvMix::ReadModifyWrite => 'f',
            KvMix::Churn => 'x',
        }
    }

    /// Parses a workload letter: `a` (update 50/50), `b` (read-heavy
    /// 95/5), `c` (read-only), `e` (scan-heavy), `f` (read-modify-write)
    /// or `x` (read-through churn, the non-YCSB cache extension).
    pub fn from_ycsb_letter(letter: char) -> Option<KvMix> {
        match letter.to_ascii_lowercase() {
            'a' => Some(KvMix::UpdateHeavy),
            'b' => Some(KvMix::ReadHeavy),
            'c' => Some(KvMix::ReadOnly),
            'e' => Some(KvMix::ScanHeavy),
            'f' => Some(KvMix::ReadModifyWrite),
            'x' => Some(KvMix::Churn),
            _ => None,
        }
    }
}

/// Key-popularity distribution of a KV workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum KeyDist {
    /// Every key equally likely (the microbenchmarks' draw).
    Uniform,
    /// Zipfian-popular keys scattered over the key space (YCSB's scrambled
    /// zipfian, constant 0.99).
    Zipfian,
    /// Zipfian-popular keys clustered at the top of the key space (YCSB's
    /// "latest": recency skew with locality).
    Latest,
}

impl KeyDist {
    /// Label used in the TSV panel column.
    pub fn label(self) -> &'static str {
        match self {
            KeyDist::Uniform => "uniform",
            KeyDist::Zipfian => "zipfian",
            KeyDist::Latest => "latest",
        }
    }

    /// Parses a distribution name (the same strings [`KeyDist::label`]
    /// prints).
    pub fn from_name(name: &str) -> Option<KeyDist> {
        match name.to_ascii_lowercase().as_str() {
            "uniform" => Some(KeyDist::Uniform),
            "zipfian" => Some(KeyDist::Zipfian),
            "latest" => Some(KeyDist::Latest),
            _ => None,
        }
    }
}

/// The YCSB zipfian constant.
pub const ZIPFIAN_THETA: f64 = 0.99;

/// Zipfian rank generator (Gray et al.'s method, as used by YCSB): rank 0 is
/// the most popular, with popularity `∝ 1 / (rank+1)^theta`.
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipfian {
    /// Builds a generator over ranks `0..n` with skew `theta` in `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipfian needs a non-empty rank space");
        assert!((0.0..1.0).contains(&theta) && theta > 0.0);
        let zetan: f64 = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let zeta2 = 1.0 + 0.5f64.powf(theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Self {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    /// Maps a uniform draw `u ∈ [0, 1)` to a rank in `0..n`.
    pub fn sample(&self, u: f64) -> u64 {
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }
}

/// Per-thread key sampler combining a distribution with the rank-to-key
/// mapping.
pub struct KeySampler {
    dist: KeyDist,
    num_keys: u64,
    zipf: Option<Zipfian>,
}

impl KeySampler {
    /// Builds a sampler over `0..num_keys`.
    pub fn new(dist: KeyDist, num_keys: u64) -> Self {
        let zipf = match dist {
            KeyDist::Uniform => None,
            KeyDist::Zipfian | KeyDist::Latest => Some(Zipfian::new(num_keys, ZIPFIAN_THETA)),
        };
        Self {
            dist,
            num_keys,
            zipf,
        }
    }

    /// Draws the next key.
    #[inline]
    pub fn sample(&self, rng: &mut Xorshift) -> u64 {
        match self.dist {
            KeyDist::Uniform => rng.next() % self.num_keys,
            KeyDist::Zipfian => {
                // Scatter the popular ranks over the key space so hot keys
                // spread across shards and buckets (scrambled zipfian).
                let rank = self.zipf.as_ref().unwrap().sample(rng.next_f64());
                rank.wrapping_mul(0x9E37_79B9_7F4A_7C15) % self.num_keys
            }
            KeyDist::Latest => {
                // Popular ranks map to the *top* of the key space: recency
                // skew with locality, unscrambled on purpose.
                let rank = self.zipf.as_ref().unwrap().sample(rng.next_f64());
                self.num_keys - 1 - rank
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Value-size distributions and self-certifying payloads
// ---------------------------------------------------------------------------

/// Longest payload the zipfian value-size distribution draws.
pub const MAX_ZIPF_VALUE_LEN: usize = 1_024;

/// Value-size distribution of a KV workload (the `--value-size` flag of the
/// `kv` binary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ValueSize {
    /// Every value exactly `N` bytes (`fixed:N`).
    Fixed(usize),
    /// Lengths uniform in `A..=B` (`uniform:A..B`).
    Uniform(usize, usize),
    /// Zipfian-skewed lengths over `1..=`[`MAX_ZIPF_VALUE_LEN`] (`zipf`):
    /// most values are a few bytes, with a long tail up to 1 KiB — the
    /// item-size shape production caches report.
    Zipf,
}

impl Default for ValueSize {
    /// Eight-byte values: the word-sized payloads of the PR 3 store, kept
    /// on the inline fast path.
    fn default() -> Self {
        ValueSize::Fixed(8)
    }
}

impl ValueSize {
    /// Label used in the TSV panel column and the flag syntax.
    pub fn label(self) -> String {
        match self {
            ValueSize::Fixed(n) => format!("fixed:{n}"),
            ValueSize::Uniform(a, b) => format!("uniform:{a}..{b}"),
            ValueSize::Zipf => "zipf".to_string(),
        }
    }

    /// Parses the flag syntax: `fixed:N`, `uniform:A..B` (inclusive ends,
    /// `A <= B`) or `zipf`.  Sizes are capped at
    /// [`spectm_kv::MAX_VALUE_LEN`].
    pub fn from_flag(raw: &str) -> Option<ValueSize> {
        let ok = |n: usize| n <= spectm_kv::MAX_VALUE_LEN;
        if raw.eq_ignore_ascii_case("zipf") {
            return Some(ValueSize::Zipf);
        }
        if let Some(n) = raw.strip_prefix("fixed:") {
            let n = n.parse().ok().filter(|&n| ok(n))?;
            return Some(ValueSize::Fixed(n));
        }
        if let Some(range) = raw.strip_prefix("uniform:") {
            let (a, b) = range.split_once("..")?;
            let a: usize = a.parse().ok()?;
            let b: usize = b.parse().ok().filter(|&b| ok(b))?;
            if a > b {
                return None;
            }
            return Some(ValueSize::Uniform(a, b));
        }
        None
    }

    /// Largest length this distribution can draw.
    pub fn max_len(self) -> usize {
        match self {
            ValueSize::Fixed(n) => n,
            ValueSize::Uniform(_, b) => b,
            ValueSize::Zipf => MAX_ZIPF_VALUE_LEN,
        }
    }

    /// Mean length of this distribution (the bytes/op figure the benches
    /// report throughput against).
    pub fn mean_len(self) -> f64 {
        match self {
            ValueSize::Fixed(n) => n as f64,
            ValueSize::Uniform(a, b) => (a + b) as f64 / 2.0,
            // Empirical mean of the zipfian(1024, 0.99) length draw.
            ValueSize::Zipf => {
                let z = Zipfian::new(MAX_ZIPF_VALUE_LEN as u64, ZIPFIAN_THETA);
                let mut rng = Xorshift::new(0xEE1);
                let n = 4_096;
                (0..n).map(|_| z.sample(rng.next_f64()) + 1).sum::<u64>() as f64 / n as f64
            }
        }
    }
}

/// Per-thread length sampler for a [`ValueSize`] (precomputes the zipfian
/// tables once).
pub struct ValueLenSampler {
    size: ValueSize,
    zipf: Option<Zipfian>,
}

impl ValueLenSampler {
    /// Builds a sampler for `size`.
    pub fn new(size: ValueSize) -> Self {
        let zipf = match size {
            ValueSize::Zipf => Some(Zipfian::new(MAX_ZIPF_VALUE_LEN as u64, ZIPFIAN_THETA)),
            _ => None,
        };
        Self { size, zipf }
    }

    /// Draws the next payload length.
    #[inline]
    pub fn sample(&self, rng: &mut Xorshift) -> usize {
        match self.size {
            ValueSize::Fixed(n) => n,
            ValueSize::Uniform(a, b) => a + (rng.next() as usize) % (b - a + 1),
            ValueSize::Zipf => self.zipf.as_ref().unwrap().sample(rng.next_f64()) as usize + 1,
        }
    }
}

/// FNV-1a over `body`, seeded with the key, masked so that an 8-byte
/// payload's top three bits stay clear — which keeps word-sized payloads on
/// the store's inline-integer fast path (see `spectm::INLINE_INT_BITS`).
#[inline]
fn payload_checksum(key: u64, body: &[u8]) -> [u8; 4] {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ key;
    for &b in body {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    let mut sum = ((h ^ (h >> 32)) as u32).to_le_bytes();
    sum[3] &= 0x1F;
    sum
}

/// Fills `buf` with a self-certifying payload of `len` bytes for `key`:
/// xorshift filler seeded by `(key, nonce)` followed by a 4-byte checksum
/// over the filler and the key.  Payloads shorter than the checksum are a
/// deterministic function of `(key, len)` alone.  The buffer is reused
/// (cleared and refilled), so steady-state writes do not allocate.
#[inline]
pub fn fill_payload(key: u64, nonce: u64, len: usize, buf: &mut Vec<u8>) {
    buf.clear();
    if len < 4 {
        let sum = payload_checksum(key, &[len as u8]);
        buf.extend_from_slice(&sum[..len]);
        return;
    }
    buf.resize(len, 0);
    let mut rng = Xorshift::new(key.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ nonce);
    let (body, tail) = buf.split_at_mut(len - 4);
    let mut chunks = body.chunks_exact_mut(8);
    for chunk in &mut chunks {
        chunk.copy_from_slice(&rng.next().to_le_bytes());
    }
    let rem = chunks.into_remainder();
    if !rem.is_empty() {
        let word = rng.next().to_le_bytes();
        let n = rem.len();
        rem.copy_from_slice(&word[..n]);
    }
    let sum = payload_checksum(key, body);
    tail.copy_from_slice(&sum);
}

/// Verifies a payload produced by [`fill_payload`] for `key` (any nonce).
pub fn payload_is_valid(key: u64, bytes: &[u8]) -> bool {
    if bytes.len() < 4 {
        let sum = payload_checksum(key, &[bytes.len() as u8]);
        return bytes == &sum[..bytes.len()];
    }
    let (body, sum) = bytes.split_at(bytes.len() - 4);
    payload_checksum(key, body) == sum
}

/// Longest scan of the scan-heavy (YCSB-E) mix.
pub const MAX_SCAN_LEN: usize = 100;

/// Percentage of scan-heavy operations that are scans (the rest insert).
pub const SCAN_PCT: u32 = 95;

/// Parameters of the scan-heavy (YCSB-E) mix: scan lengths are drawn from a
/// zipfian over `1..=`[`MAX_SCAN_LEN`] (short scans dominate, as in YCSB's
/// default), and inserts of fresh keys land uniformly in the *extension
/// region* `num_keys..2*num_keys` above the loaded key space, so scans
/// starting near the top of the space observe them.
pub struct ScanParams {
    len_zipf: Zipfian,
    insert_base: u64,
    insert_span: u64,
}

impl ScanParams {
    /// Builds the parameters for a key space of `0..num_keys` loaded keys.
    pub fn for_keys(num_keys: u64) -> Self {
        Self {
            len_zipf: Zipfian::new(MAX_SCAN_LEN as u64, ZIPFIAN_THETA),
            insert_base: num_keys,
            insert_span: num_keys.max(1),
        }
    }

    /// Draws a zipfian scan length in `1..=`[`MAX_SCAN_LEN`].
    #[inline]
    pub fn sample_len(&self, rng: &mut Xorshift) -> usize {
        self.len_zipf.sample(rng.next_f64()) as usize + 1
    }

    /// Draws the key for a YCSB-E insert, uniformly from the extension
    /// region.
    #[inline]
    pub fn insert_key(&self, rng: &mut Xorshift) -> u64 {
        self.insert_base + rng.next() % self.insert_span
    }
}

// ---------------------------------------------------------------------------
// The workload driver
// ---------------------------------------------------------------------------

/// Parameters of one KV-store run.
#[derive(Debug, Clone, Serialize)]
pub struct KvWorkloadConfig {
    /// Keys are drawn from `0..num_keys`; the load phase inserts all of
    /// them, so reads and RMWs always hit.
    pub num_keys: u64,
    /// Shard count of the store (power of two).
    pub shards: usize,
    /// Keys budgeted per shard — the capacity hint the maps size their
    /// bucket arrays from (targeting the ~0.75 bucket load factor; not a
    /// limit, overflow buckets absorb any excess).
    pub capacity_per_shard: usize,
    /// Number of worker threads.
    pub threads: usize,
    /// Wall-clock duration of the measured phase.
    pub duration: Duration,
    /// Operation mix.
    pub mix: KvMix,
    /// Key-popularity distribution.
    pub dist: KeyDist,
    /// Value-size distribution of every written payload.
    pub value_size: ValueSize,
    /// Verify payload checksums on every read, and replay an oracle sweep
    /// over the whole key space after the measured phase.  Costs cycles in
    /// the measured loop, so keep it off for throughput numbers.  Ignored
    /// for the read-modify-write mix, whose writes are counters rather than
    /// checksummed payloads.
    pub verify: bool,
    /// Keys touched by one read-modify-write (drawn independently, so they
    /// usually land on different shards).
    pub rmw_keys: usize,
    /// Operations per batch.  `1` (the default) drives the single-key API;
    /// larger values drive `execute_batch` with batches of this many
    /// operations, amortizing routing and epoch entry (point-operation
    /// mixes only — see [`KvMix::supports_batching`]).
    pub batch: usize,
    /// Live-byte budget for cache-mode runs (`None`, the default, keeps
    /// the store unbounded).  Set it below the loaded working set and the
    /// background reclaimer evicts during the run.
    pub max_bytes: Option<u64>,
    /// Default TTL the store stamps on every put (`0` = immortal).
    pub default_ttl_ms: u64,
    /// Victim selection once `max_bytes` is exceeded (the frequency-byte
    /// CLOCK by default; FIFO is the baseline it is measured against).
    pub policy: EvictionPolicy,
}

impl Default for KvWorkloadConfig {
    fn default() -> Self {
        Self {
            num_keys: 65_536,
            shards: 16,
            capacity_per_shard: 4_096,
            threads: 1,
            duration: Duration::from_millis(300),
            mix: KvMix::ReadHeavy,
            dist: KeyDist::Uniform,
            value_size: ValueSize::default(),
            verify: false,
            rmw_keys: 2,
            batch: 1,
            max_bytes: None,
            default_ttl_ms: 0,
            policy: EvictionPolicy::Freq,
        }
    }
}

impl KvWorkloadConfig {
    /// Derives the store-sizing fields from a key-space size: 16 shards (or
    /// fewer for tiny spaces) and a per-shard capacity hint of the shard's
    /// fair share of the keys, so the tables land near their target load
    /// factor without hand-picked bucket counts.
    pub fn sized_for(num_keys: u64) -> Self {
        let shards = 16usize.min((num_keys / 64).max(1) as usize);
        let capacity_per_shard = (num_keys as usize).div_ceil(shards).max(1);
        Self {
            num_keys,
            shards,
            capacity_per_shard,
            ..Self::default()
        }
    }

    /// Overrides the per-shard capacity hint from a *total* capacity (the
    /// `--capacity` flag): undersizing the hint relative to `num_keys`
    /// drives the tables to high load factors for occupancy stress runs.
    pub fn with_total_capacity(mut self, total_capacity: usize) -> Self {
        self.capacity_per_shard = total_capacity.div_ceil(self.shards).max(1);
        self
    }

    /// The store cache configuration the workload's cache fields describe
    /// (what [`StmKvBench::with_cache`] is handed).
    pub fn cache_config(&self) -> CacheConfig {
        CacheConfig {
            max_bytes: self.max_bytes,
            default_ttl_ms: self.default_ttl_ms,
            policy: self.policy,
            ..CacheConfig::default()
        }
    }
}

/// Loads every key of `0..num_keys` with a self-certifying payload whose
/// length follows `value_size`.
pub fn load_keys<K: KvStore>(store: &K, num_keys: u64, value_size: ValueSize) {
    let mut ctx = store.thread_ctx();
    let lens = ValueLenSampler::new(value_size);
    let mut rng = Xorshift::new(0x10AD_5EED);
    let mut buf = Vec::with_capacity(value_size.max_len());
    for key in 0..num_keys {
        fill_payload(key, 0, lens.sample(&mut rng), &mut buf);
        store.put(key, &buf, &mut ctx);
    }
}

/// Per-thread state of the workload loop: key and value-length samplers,
/// the thread's RNG, the RMW key buffer, the scan parameters and the
/// reusable payload buffer.  Bundling it keeps [`perform_op`] — shared by
/// the multi-threaded driver and the Criterion runners in the `bench`
/// crate — at a callable arity, and keeps steady-state writes
/// allocation-free.
pub struct WorkerState {
    mix: KvMix,
    sampler: KeySampler,
    rng: Xorshift,
    rmw_buf: Vec<u64>,
    scan: ScanParams,
    lens: ValueLenSampler,
    verify: bool,
    scratch: Vec<u8>,
    /// Reusable request of the batched path ([`perform_batch`]): carries
    /// the operations and the store's grouping scratch across batches.
    batch_req: BatchRequest,
    /// Reusable response buffer of the batched path.
    batch_results: BatchResponse,
}

impl WorkerState {
    /// Builds the state for one worker of the given configuration.  `seed`
    /// decorrelates the per-thread streams.
    pub fn new(cfg: &KvWorkloadConfig, seed: u64) -> Self {
        Self {
            mix: cfg.mix,
            sampler: KeySampler::new(cfg.dist, cfg.num_keys),
            rng: Xorshift::new(seed),
            rmw_buf: vec![0u64; cfg.rmw_keys],
            scan: ScanParams::for_keys(cfg.num_keys),
            lens: ValueLenSampler::new(cfg.value_size),
            // Counter writes make checksums meaningless under the RMW mix.
            verify: cfg.verify && cfg.mix != KvMix::ReadModifyWrite,
            scratch: Vec::with_capacity(cfg.value_size.max_len()),
            batch_req: BatchRequest::new(),
            batch_results: BatchResponse::with_capacity(cfg.batch),
        }
    }

    /// Fills the reusable request buffer with `n` operations drawn from the
    /// mix's read/write split and the panel's key and value-length
    /// distributions — the batched counterpart of the per-op draws in
    /// [`perform_op`].  Word-sized payloads stay inline in their
    /// [`BatchOp::Put`], so building the batch does not allocate in the
    /// steady state.
    pub fn build_batch(&mut self, n: usize) {
        debug_assert!(
            self.mix.supports_batching(),
            "{:?} has no batched shape",
            self.mix
        );
        self.batch_req.clear();
        for _ in 0..n {
            let key = self.sampler.sample(&mut self.rng);
            let raw = self.rng.next();
            if raw % 100 < self.mix.read_pct() as u64 {
                self.batch_req.get(key);
            } else {
                let len = self.lens.sample(&mut self.rng);
                fill_payload(key, raw, len, &mut self.scratch);
                self.batch_req.put(key, &self.scratch);
            }
        }
    }

    /// Fills the reusable request buffer with the churn mix's batched
    /// shape: fill puts for the keys in `fills` (the previous batch's
    /// get misses, read-through style), then point gets drawn from the
    /// key distribution for the remainder.  With `ttl_ms > 0` the fills
    /// ride [`BatchOp::PutTtl`] instead of plain puts, exercising the TTL
    /// opcode over the wire.
    pub fn build_churn_batch(&mut self, n: usize, fills: &mut Vec<u64>, ttl_ms: u64) {
        self.batch_req.clear();
        for _ in 0..n {
            if let Some(key) = fills.pop() {
                let raw = self.rng.next();
                let len = self.lens.sample(&mut self.rng);
                fill_payload(key, raw, len, &mut self.scratch);
                if ttl_ms > 0 {
                    self.batch_req.put_ttl(key, &self.scratch, ttl_ms);
                } else {
                    self.batch_req.put(key, &self.scratch);
                }
            } else {
                self.batch_req.get(self.sampler.sample(&mut self.rng));
            }
        }
    }

    /// The operations of the last [`WorkerState::build_batch`], in request
    /// order — what a network client ships as one request frame (the
    /// in-process driver hands the whole request to the store instead).
    #[inline]
    pub fn batch_ops(&self) -> &[BatchOp] {
        self.batch_req.ops()
    }

    /// Draws the next primary key.
    #[inline]
    pub fn sample_key(&mut self) -> u64 {
        self.sampler.sample(&mut self.rng)
    }

    /// Draws the next raw dispatch word.
    #[inline]
    pub fn next_raw(&mut self) -> u64 {
        self.rng.next()
    }

    #[inline]
    fn check(&self, key: u64, value: &Value) {
        if self.verify {
            assert!(
                payload_is_valid(key, value),
                "checksum mismatch for key {key}: {value:?}"
            );
        }
    }
}

/// Executes one workload operation.  For the scan-heavy mix the dispatch is
/// scan vs insert (`SCAN_PCT`); for every other mix it is a read with
/// probability `mix.read_pct()`, otherwise the mix's write shape.  `key` is
/// the primary key (a scan's start key) and `raw` the dispatch draw; the
/// extra read-modify-write keys and every payload length follow the panel's
/// distributions in `state`.  When the state's verify flag is set, every
/// value the operation reads back is checksum-verified against its key.
/// Shared by the multi-threaded driver and the Criterion runners in the
/// `bench` crate so the two cannot drift apart.
#[inline]
pub fn perform_op<K: KvStore>(
    store: &K,
    ctx: &mut K::ThreadCtx,
    key: u64,
    raw: u64,
    state: &mut WorkerState,
) {
    let mix = state.mix;
    if mix == KvMix::Churn {
        // Read-through: serve hits, refill misses.  Under a byte budget the
        // refill re-raises eviction pressure, so the run settles into the
        // steady state whose hit rate the panel reports.
        match store.get(key, ctx) {
            Some(value) => {
                state.check(key, &value);
                std::hint::black_box(&value);
            }
            None => {
                let len = state.lens.sample(&mut state.rng);
                fill_payload(key, raw, len, &mut state.scratch);
                std::hint::black_box(store.put(key, &state.scratch, ctx));
            }
        }
        return;
    }
    if mix == KvMix::ScanHeavy {
        if raw % 100 < SCAN_PCT as u64 {
            let len = state.scan.sample_len(&mut state.rng);
            let run = std::hint::black_box(store.scan(key, len, ctx));
            if state.verify {
                for (k, v) in &run {
                    state.check(*k, v);
                }
            }
        } else {
            let insert_key = state.scan.insert_key(&mut state.rng);
            let len = state.lens.sample(&mut state.rng);
            fill_payload(insert_key, raw, len, &mut state.scratch);
            std::hint::black_box(store.put(insert_key, &state.scratch, ctx));
        }
        return;
    }
    if raw % 100 < mix.read_pct() as u64 {
        // black_box by reference, and only borrow the result: consuming it
        // after the black_box would force the compiler to re-copy the
        // 24-byte value it must now assume was observed.
        let got = store.get(key, ctx);
        if let Some(value) = &got {
            state.check(key, value);
        }
        std::hint::black_box(&got);
    } else {
        match mix {
            KvMix::ReadHeavy | KvMix::UpdateHeavy => {
                let len = state.lens.sample(&mut state.rng);
                fill_payload(key, raw, len, &mut state.scratch);
                let old = store.put(key, &state.scratch, ctx);
                if let Some(old) = &old {
                    state.check(key, old);
                }
                std::hint::black_box(&old);
            }
            KvMix::ReadModifyWrite => {
                state.rmw_buf[0] = key;
                for slot in state.rmw_buf[1..].iter_mut() {
                    *slot = state.sampler.sample(&mut state.rng);
                }
                std::hint::black_box(store.rmw_add(&state.rmw_buf, 1, ctx));
            }
            KvMix::ReadOnly | KvMix::ScanHeavy | KvMix::Churn => {
                unreachable!("fully dispatched above")
            }
        }
    }
}

/// Executes one batch of `n` operations through [`KvStore::execute_batch`],
/// drawing the operations from the state's distributions
/// ([`WorkerState::build_batch`]).  When the state's verify flag is set,
/// every value the batch returns — read values of gets, displaced values of
/// puts — is checksum-verified against its key.  Shared by the
/// multi-threaded driver and the Criterion runners in the `bench` crate.
#[inline]
pub fn perform_batch<K: KvStore>(
    store: &K,
    ctx: &mut K::ThreadCtx,
    n: usize,
    state: &mut WorkerState,
) {
    state.build_batch(n);
    store.execute_batch(&mut state.batch_req, &mut state.batch_results, ctx);
    if state.verify {
        for (op, result) in state.batch_req.ops().iter().zip(&state.batch_results) {
            if let Some(value) = result {
                state.check(op.key(), value);
            }
        }
    }
    std::hint::black_box(&state.batch_results);
}

/// Runs the workload once (load phase + measured phase) and reports
/// throughput.  One read-modify-write counts as one operation; a batch of
/// `cfg.batch` operations counts as `cfg.batch` operations.  With
/// `cfg.verify` set, reads are checksum-verified throughout and a final
/// oracle sweep re-reads the whole key space after the workers stop.
pub fn run_kv<K: KvStore>(store: Arc<K>, cfg: &KvWorkloadConfig) -> RunResult {
    run_kv_with_stats(store, cfg).0
}

/// [`run_kv`] that also reports the hit rate observed over the measured
/// phase (`None` when the store is not running in cache mode).  In cache
/// mode the store's background reclaimer runs for the whole load + measure
/// window, so budget eviction and expiry happen concurrently with the
/// workload — the shape the churn mix exists to measure.  Hits and misses
/// accumulated during the load phase are subtracted out.
pub fn run_kv_with_stats<K: KvStore>(
    store: Arc<K>,
    cfg: &KvWorkloadConfig,
) -> (RunResult, Option<f64>) {
    assert!(
        cfg.threads == 1 || store.supports_concurrency(),
        "store cannot run with {} threads",
        cfg.threads
    );
    assert!(
        cfg.rmw_keys >= 1 && cfg.rmw_keys <= spectm_kv::MAX_RMW_KEYS,
        "rmw_keys must be in 1..={}",
        spectm_kv::MAX_RMW_KEYS
    );
    assert!(cfg.batch >= 1, "a batch holds at least one operation");
    assert!(
        cfg.batch == 1 || cfg.mix.supports_batching(),
        "{:?} does not batch (point-operation mixes only)",
        cfg.mix
    );
    let reclaimer = store.spawn_reclaimer();
    load_keys(&*store, cfg.num_keys, cfg.value_size);
    let loaded = store.cache_stats();

    let samples = run_timed(cfg.threads, cfg.duration, |tid| {
        let mut ctx = store.thread_ctx();
        let mut state = WorkerState::new(cfg, 0x0BAD_5EED ^ (0x9E37_79B9 * (tid as u64 + 1)));
        let store = &store;
        let batch = cfg.batch;
        move || {
            if batch > 1 {
                let mut done = 0u64;
                while done < BATCH_OPS {
                    perform_batch(&**store, &mut ctx, batch, &mut state);
                    done += batch as u64;
                }
                done
            } else {
                for _ in 0..BATCH_OPS {
                    let key = state.sample_key();
                    let raw = state.next_raw();
                    perform_op(&**store, &mut ctx, key, raw, &mut state);
                }
                BATCH_OPS
            }
        }
    });
    let result = RunResult::from_samples(samples);
    let hit_rate = store.cache_stats().map(|after| {
        let before = loaded.unwrap_or_default();
        let hits = after.hits.saturating_sub(before.hits);
        let misses = after.misses.saturating_sub(before.misses);
        if hits + misses == 0 {
            1.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    });
    if let Some(reclaimer) = reclaimer {
        reclaimer.stop();
    }
    // The oracle sweep asserts every loaded key survived, which only holds
    // when nothing expires or evicts them: cache-mode runs skip it.
    let cache_mode = cfg.max_bytes.is_some() || cfg.default_ttl_ms > 0;
    if cfg.verify && cfg.mix != KvMix::ReadModifyWrite && cfg.mix != KvMix::Churn && !cache_mode {
        verify_sweep(&*store, cfg.num_keys);
    }
    (result, hit_rate)
}

/// Oracle replay after quiescence: every loaded key must still be present
/// and carry a payload whose checksum certifies it was written whole for
/// exactly that key.  (The mixes never delete loaded keys; scan-heavy
/// inserts land above the loaded space and are verified too, when present.)
fn verify_sweep<K: KvStore>(store: &K, num_keys: u64) {
    let mut ctx = store.thread_ctx();
    for key in 0..num_keys {
        let value = store
            .get(key, &mut ctx)
            .unwrap_or_else(|| panic!("loaded key {key} vanished"));
        assert!(
            payload_is_valid(key, &value),
            "post-run checksum mismatch for key {key}: {value:?}"
        );
    }
}

/// Runs the workload `runs` times on fresh stores produced by `make_store`
/// and returns the mean throughput after discarding the minimum and maximum
/// (the same repetition policy as the figure sweeps).
pub fn run_kv_repeated<K, F>(make_store: F, cfg: &KvWorkloadConfig, runs: usize) -> f64
where
    K: KvStore,
    F: Fn() -> K,
{
    run_kv_repeated_with_stats(make_store, cfg, runs).0
}

/// [`run_kv_repeated`] that also reports the mean measured-phase hit rate
/// across all runs (`None` when the store has no cache counters).
pub fn run_kv_repeated_with_stats<K, F>(
    make_store: F,
    cfg: &KvWorkloadConfig,
    runs: usize,
) -> (f64, Option<f64>)
where
    K: KvStore,
    F: Fn() -> K,
{
    assert!(runs >= 1);
    let results: Vec<(f64, Option<f64>)> = (0..runs)
        .map(|_| {
            let (result, hit_rate) = run_kv_with_stats(Arc::new(make_store()), cfg);
            (result.throughput, hit_rate)
        })
        .collect();
    let mut throughputs: Vec<f64> = results.iter().map(|(t, _)| *t).collect();
    throughputs.sort_by(|a, b| a.partial_cmp(b).expect("throughputs are finite"));
    let trimmed: &[f64] = if throughputs.len() > 2 {
        &throughputs[1..throughputs.len() - 1]
    } else {
        &throughputs
    };
    let mean = trimmed.iter().sum::<f64>() / trimmed.len() as f64;
    // Hit rates are far more stable than throughput, so a plain mean over
    // every run suffices (no min/max trimming).
    let rates: Vec<f64> = results.iter().filter_map(|(_, r)| *r).collect();
    let hit_rate = (!rates.is_empty()).then(|| rates.iter().sum::<f64>() / rates.len() as f64);
    (mean, hit_rate)
}

/// Runs the KV workload for a [`VariantSpec`] label, returning mean
/// throughput in operations per second.
///
/// # Panics
///
/// Panics for [`VariantSpec::Sequential`]: the store is a concurrent
/// subsystem and has no single-threaded reference implementation.
pub fn run_kv_variant(spec: VariantSpec, cfg: &KvWorkloadConfig, runs: usize) -> f64 {
    run_kv_variant_stats(spec, cfg, runs).0
}

/// [`run_kv_variant`] that also reports the mean measured-phase hit rate.
/// STM variants honour the workload's cache fields ([`KvWorkloadConfig::cache_config`]);
/// the lock-free baseline has no TTL machinery, so its hit rate is `None`
/// (and its cache fields are ignored).
pub fn run_kv_variant_stats(
    spec: VariantSpec,
    cfg: &KvWorkloadConfig,
    runs: usize,
) -> (f64, Option<f64>) {
    match spec {
        VariantSpec::Sequential => {
            panic!("the KV store has no sequential baseline; use lock-free or an STM variant")
        }
        VariantSpec::LockFree => run_kv_repeated_with_stats(
            || {
                LockFreeKvBench::new(LockFreeKvMap::new(
                    cfg.shards * cfg.capacity_per_shard,
                    Collector::new(),
                ))
            },
            cfg,
            runs,
        ),
        _ => {
            let (layout, api, config) = spec.stm_parts().expect("STM variant");
            let config = bench_config(config);
            match layout {
                Layout::Orec => run_kv_repeated_with_stats(
                    || {
                        StmKvBench::with_cache(
                            OrecStm::with_config(config),
                            cfg.shards,
                            cfg.capacity_per_shard,
                            api,
                            cfg.cache_config(),
                        )
                    },
                    cfg,
                    runs,
                ),
                Layout::Tvar => run_kv_repeated_with_stats(
                    || {
                        StmKvBench::with_cache(
                            TvarStm::with_config(config),
                            cfg.shards,
                            cfg.capacity_per_shard,
                            api,
                            cfg.cache_config(),
                        )
                    },
                    cfg,
                    runs,
                ),
                Layout::Val => run_kv_repeated_with_stats(
                    || {
                        StmKvBench::with_cache(
                            ValShort::with_config(config),
                            cfg.shards,
                            cfg.capacity_per_shard,
                            api,
                            cfg.cache_config(),
                        )
                    },
                    cfg,
                    runs,
                ),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The `kv` binary's sweep
// ---------------------------------------------------------------------------

use crate::figures::{FigureOpts, FigureRow};

/// Variants the `kv` binary sweeps: the paper's best short-transaction
/// variant, a second short layout, the BaseTM full-transaction shape and the
/// CAS baseline.
pub fn kv_variants() -> Vec<VariantSpec> {
    vec![
        VariantSpec::ValShort,
        VariantSpec::TvarShortG,
        VariantSpec::OrecFullG,
        VariantSpec::LockFree,
    ]
}

/// The mixes the `kv` binary sweeps by default (YCSB B, A, F and E; the
/// read-only C mix is available through `--workload c`).
pub fn kv_default_mixes() -> Vec<KvMix> {
    vec![
        KvMix::ReadHeavy,
        KvMix::UpdateHeavy,
        KvMix::ReadModifyWrite,
        KvMix::ScanHeavy,
    ]
}

/// The distributions the `kv` binary sweeps by default.
pub fn kv_default_dists() -> Vec<KeyDist> {
    vec![KeyDist::Uniform, KeyDist::Zipfian, KeyDist::Latest]
}

/// Produces the `kv` binary's rows: threads × mix × distribution × variant,
/// in the same TSV row shape as the figure drivers (`figure` is `"kv"`,
/// `panel` is `"<mix> / <dist>"` — with the value-size label appended when
/// it is not the default — and `x` is the thread count).
pub fn kv_rows(opts: &FigureOpts) -> Vec<FigureRow> {
    kv_rows_for(
        opts,
        &kv_default_mixes(),
        &kv_default_dists(),
        ValueSize::default(),
        false,
        1,
        None,
        KvCacheArgs::default(),
    )
}

/// Cache-mode knobs of the `kv` binary (`--max-bytes` / `--ttl-ms` /
/// `--policy`), bundled so the sweep signature stays manageable.  The
/// default is cache mode off: no budget, no TTL.
#[derive(Debug, Default, Clone, Copy)]
pub struct KvCacheArgs {
    /// Live-byte budget (`--max-bytes`); `None` disables eviction.
    pub max_bytes: Option<u64>,
    /// Default TTL in milliseconds (`--ttl-ms`); `0` = immortal.
    pub default_ttl_ms: u64,
    /// Victim selection (`--policy freq|fifo`).
    pub policy: EvictionPolicy,
}

impl KvCacheArgs {
    /// Whether any cache knob is set (the sweep labels panels and emits
    /// hit rates only in cache mode).
    pub fn enabled(&self) -> bool {
        self.max_bytes.is_some() || self.default_ttl_ms > 0
    }

    /// The panel-label suffix describing these knobs, e.g.
    /// `" / budget:1048576 / fifo"` (empty when cache mode is off).
    fn panel_suffix(&self) -> String {
        let mut suffix = String::new();
        if let Some(budget) = self.max_bytes {
            suffix.push_str(&format!(" / budget:{budget}"));
        }
        if self.default_ttl_ms > 0 {
            suffix.push_str(&format!(" / ttl:{}ms", self.default_ttl_ms));
        }
        if self.enabled() && self.policy == EvictionPolicy::Fifo {
            suffix.push_str(" / fifo");
        }
        suffix
    }
}

/// [`kv_rows`] restricted to explicit mixes, distributions, a value-size
/// distribution, a verification switch, a batch size and an optional total
/// capacity-hint override (the `--workload` / `--dist` / `--value-size` /
/// `--verify` / `--batch` / `--capacity` flags of the `kv` binary).  With
/// `batch > 1`, mixes that have no batched shape (scans, multi-key RMW) are
/// skipped with a warning rather than aborting the sweep.  A `capacity`
/// below the key-space size undersizes the tables, driving them to high
/// load factors (the occupancy stress shape CI exercises).
#[allow(clippy::too_many_arguments)]
pub fn kv_rows_for(
    opts: &FigureOpts,
    mixes: &[KvMix],
    dists: &[KeyDist],
    value_size: ValueSize,
    verify: bool,
    batch: usize,
    capacity: Option<usize>,
    cache: KvCacheArgs,
) -> Vec<FigureRow> {
    assert!(batch >= 1, "a batch holds at least one operation");
    let mut rows = Vec::new();
    for &mix in mixes {
        if batch > 1 && !mix.supports_batching() {
            eprintln!(
                "warning: skipping workload {} (batching covers point-operation mixes only)",
                mix.label()
            );
            continue;
        }
        for &dist in dists {
            let mut panel = if value_size == ValueSize::default() {
                format!("{} / {}", mix.label(), dist.label())
            } else {
                format!(
                    "{} / {} / {}",
                    mix.label(),
                    dist.label(),
                    value_size.label()
                )
            };
            if batch > 1 {
                panel.push_str(&format!(" / batch:{batch}"));
            }
            panel.push_str(&cache.panel_suffix());
            for variant in kv_variants() {
                for &threads in &opts.threads {
                    let mut sized = KvWorkloadConfig::sized_for(opts.key_range);
                    if let Some(total) = capacity {
                        sized = sized.with_total_capacity(total);
                    }
                    let cfg = KvWorkloadConfig {
                        threads,
                        duration: opts.duration,
                        mix,
                        dist,
                        value_size,
                        verify,
                        batch,
                        max_bytes: cache.max_bytes,
                        default_ttl_ms: cache.default_ttl_ms,
                        policy: cache.policy,
                        ..sized
                    };
                    let (y, hit_rate) = run_kv_variant_stats(variant, &cfg, opts.runs);
                    rows.push(FigureRow {
                        figure: "kv",
                        panel: panel.clone(),
                        series: variant.label().to_string(),
                        x: threads as f64,
                        y,
                        hit_rate,
                    });
                }
            }
        }
    }
    rows
}

/// The `kv --stats` mode: loads the key space of `0..opts.key_range` into a
/// fresh store per acceptance variant (sized by [`KvWorkloadConfig::sized_for`],
/// optionally capacity-overridden) and returns each variant's occupancy and
/// probe-length statistics, quiescently.  This is the probe-length
/// acceptance surface: at the default sizing the histogram must show the
/// overwhelming majority of probes touching one bucket.
pub fn kv_stats_rows(
    opts: &FigureOpts,
    value_size: ValueSize,
    capacity: Option<usize>,
) -> Vec<(String, MapStats)> {
    let mut cfg = KvWorkloadConfig::sized_for(opts.key_range);
    if let Some(total) = capacity {
        cfg = cfg.with_total_capacity(total);
    }
    fn loaded_stats<K: KvStore>(
        store: K,
        cfg: &KvWorkloadConfig,
        value_size: ValueSize,
    ) -> MapStats {
        load_keys(&store, cfg.num_keys, value_size);
        store.stats().expect("bundled stores report stats")
    }
    kv_variants()
        .into_iter()
        .map(|spec| {
            let stats = match spec {
                VariantSpec::LockFree => loaded_stats(
                    LockFreeKvBench::new(LockFreeKvMap::new(
                        cfg.shards * cfg.capacity_per_shard,
                        Collector::new(),
                    )),
                    &cfg,
                    value_size,
                ),
                _ => {
                    let (layout, api, config) = spec.stm_parts().expect("STM variant");
                    let config = bench_config(config);
                    match layout {
                        Layout::Orec => loaded_stats(
                            StmKvBench::new(
                                OrecStm::with_config(config),
                                cfg.shards,
                                cfg.capacity_per_shard,
                                api,
                            ),
                            &cfg,
                            value_size,
                        ),
                        Layout::Tvar => loaded_stats(
                            StmKvBench::new(
                                TvarStm::with_config(config),
                                cfg.shards,
                                cfg.capacity_per_shard,
                                api,
                            ),
                            &cfg,
                            value_size,
                        ),
                        Layout::Val => loaded_stats(
                            StmKvBench::new(
                                ValShort::with_config(config),
                                cfg.shards,
                                cfg.capacity_per_shard,
                                api,
                            ),
                            &cfg,
                            value_size,
                        ),
                    }
                }
            };
            (spec.label().to_string(), stats)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spectm_ds::ApiMode;

    fn tiny_cfg(mix: KvMix, dist: KeyDist, threads: usize) -> KvWorkloadConfig {
        KvWorkloadConfig {
            threads,
            duration: Duration::from_millis(20),
            mix,
            dist,
            ..KvWorkloadConfig::sized_for(512)
        }
    }

    #[test]
    fn value_size_flags_roundtrip() {
        assert_eq!(ValueSize::from_flag("fixed:8"), Some(ValueSize::Fixed(8)));
        assert_eq!(
            ValueSize::from_flag("uniform:64..1024"),
            Some(ValueSize::Uniform(64, 1024))
        );
        assert_eq!(ValueSize::from_flag("zipf"), Some(ValueSize::Zipf));
        assert_eq!(ValueSize::from_flag("uniform:9..3"), None, "A > B");
        assert_eq!(ValueSize::from_flag("fixed:"), None);
        assert_eq!(ValueSize::from_flag("bogus"), None);
        assert_eq!(
            ValueSize::from_flag(&format!("fixed:{}", spectm_kv::MAX_VALUE_LEN + 1)),
            None,
            "sizes beyond the store cap are rejected at parse time"
        );
        for vs in [
            ValueSize::Fixed(100),
            ValueSize::Uniform(64, 256),
            ValueSize::Zipf,
        ] {
            assert_eq!(ValueSize::from_flag(&vs.label()), Some(vs));
        }
    }

    #[test]
    fn value_len_samplers_stay_in_range() {
        for vs in [
            ValueSize::Fixed(100),
            ValueSize::Uniform(64, 256),
            ValueSize::Uniform(0, 0),
            ValueSize::Zipf,
        ] {
            let sampler = ValueLenSampler::new(vs);
            let mut rng = Xorshift::new(31);
            for _ in 0..5_000 {
                let len = sampler.sample(&mut rng);
                assert!(len <= vs.max_len(), "{vs:?} drew {len}");
                match vs {
                    ValueSize::Fixed(n) => assert_eq!(len, n),
                    ValueSize::Uniform(a, _) => assert!(len >= a),
                    ValueSize::Zipf => assert!(len >= 1),
                }
            }
            assert!(vs.mean_len() <= vs.max_len() as f64);
        }
    }

    #[test]
    fn payloads_self_certify_and_reject_corruption() {
        let mut buf = Vec::new();
        for len in [0usize, 1, 3, 4, 7, 8, 9, 100, 1024] {
            for nonce in [0u64, 7, 0xDEAD] {
                fill_payload(42, nonce, len, &mut buf);
                assert_eq!(buf.len(), len);
                assert!(payload_is_valid(42, &buf), "len {len} nonce {nonce}");
                if len > 0 {
                    // Any flipped byte must fail, as must the wrong key.
                    let mut corrupt = buf.clone();
                    corrupt[len / 2] ^= 0x40;
                    assert!(!payload_is_valid(42, &corrupt), "len {len}");
                    assert!(!payload_is_valid(43, &buf), "len {len}");
                }
            }
        }
    }

    #[test]
    fn eight_byte_payloads_stay_on_the_inline_int_path() {
        // The checksum mask must keep word-sized payloads below
        // 2^INLINE_INT_BITS so the default value size never allocates.
        let mut buf = Vec::new();
        for key in 0..500u64 {
            fill_payload(key, key.wrapping_mul(977), 8, &mut buf);
            assert!(
                spectm::encode_inline(&buf).is_some(),
                "key {key}: 8-byte payload fell off the inline path"
            );
        }
    }

    #[test]
    fn zipfian_ranks_are_skewed_and_in_range() {
        let z = Zipfian::new(1_000, ZIPFIAN_THETA);
        let mut rng = Xorshift::new(7);
        let mut counts = vec![0u32; 1_000];
        for _ in 0..20_000 {
            let rank = z.sample(rng.next_f64());
            assert!(rank < 1_000);
            counts[rank as usize] += 1;
        }
        // Rank 0 must dominate: more draws than the entire upper half.
        let upper_half: u32 = counts[500..].iter().sum();
        assert!(
            counts[0] > upper_half,
            "rank 0 drawn {} times vs upper half {}",
            counts[0],
            upper_half
        );
    }

    #[test]
    fn samplers_stay_in_range_for_every_distribution() {
        for dist in [KeyDist::Uniform, KeyDist::Zipfian, KeyDist::Latest] {
            let sampler = KeySampler::new(dist, 333);
            let mut rng = Xorshift::new(11);
            for _ in 0..5_000 {
                assert!(sampler.sample(&mut rng) < 333, "{dist:?} out of range");
            }
        }
    }

    #[test]
    fn latest_distribution_prefers_recent_keys() {
        let sampler = KeySampler::new(KeyDist::Latest, 1_000);
        let mut rng = Xorshift::new(13);
        let mut top_decile = 0u32;
        const DRAWS: u32 = 10_000;
        for _ in 0..DRAWS {
            if sampler.sample(&mut rng) >= 900 {
                top_decile += 1;
            }
        }
        // Under uniform the top decile would get ~10%; recency skew must
        // push it far beyond that.
        assert!(
            top_decile > DRAWS / 2,
            "top decile only drew {top_decile} of {DRAWS}"
        );
    }

    const ALL_MIXES: [KvMix; 5] = [
        KvMix::ReadHeavy,
        KvMix::UpdateHeavy,
        KvMix::ReadOnly,
        KvMix::ScanHeavy,
        KvMix::ReadModifyWrite,
    ];

    #[test]
    fn stm_store_serves_every_mix() {
        for mix in ALL_MIXES {
            let store = Arc::new(StmKvBench::new(ValShort::new(), 4, 128, ApiMode::Short));
            let res = run_kv(store, &tiny_cfg(mix, KeyDist::Zipfian, 2));
            assert!(res.total_ops > 0, "{mix:?}");
            assert!(res.throughput > 0.0, "{mix:?}");
        }
    }

    #[test]
    fn lock_free_store_serves_every_mix() {
        for mix in ALL_MIXES {
            let store = Arc::new(LockFreeKvBench::new(LockFreeKvMap::new(
                512,
                Collector::new(),
            )));
            let res = run_kv(store, &tiny_cfg(mix, KeyDist::Uniform, 2));
            assert!(res.total_ops > 0, "{mix:?}");
        }
    }

    #[test]
    fn verified_runs_pass_for_every_value_size() {
        // Concurrent checksum verification plus the post-run oracle sweep,
        // across all three value-size distributions (and both stores for
        // the acceptance shape, uniform:64..1024).
        for vs in [
            ValueSize::Fixed(8),
            ValueSize::Uniform(64, 1024),
            ValueSize::Zipf,
        ] {
            let cfg = KvWorkloadConfig {
                value_size: vs,
                verify: true,
                ..tiny_cfg(KvMix::UpdateHeavy, KeyDist::Zipfian, 2)
            };
            let store = Arc::new(StmKvBench::new(ValShort::new(), 4, 128, ApiMode::Short));
            assert!(run_kv(store, &cfg).total_ops > 0, "{vs:?}");
        }
        let cfg = KvWorkloadConfig {
            value_size: ValueSize::Uniform(64, 1024),
            verify: true,
            ..tiny_cfg(KvMix::ScanHeavy, KeyDist::Uniform, 2)
        };
        let store = Arc::new(LockFreeKvBench::new(LockFreeKvMap::new(
            512,
            Collector::new(),
        )));
        assert!(run_kv(store, &cfg).total_ops > 0);
    }

    #[test]
    fn batched_runs_serve_point_mixes_on_both_stores() {
        for batch in [2usize, 16, 128] {
            for mix in [KvMix::ReadHeavy, KvMix::UpdateHeavy, KvMix::ReadOnly] {
                let cfg = KvWorkloadConfig {
                    batch,
                    verify: true,
                    ..tiny_cfg(mix, KeyDist::Zipfian, 2)
                };
                let store = Arc::new(StmKvBench::new(ValShort::new(), 4, 128, ApiMode::Short));
                let res = run_kv(store, &cfg);
                assert!(res.total_ops > 0, "{mix:?} batch {batch}");
                assert_eq!(
                    res.total_ops % batch as u64,
                    0,
                    "ops are counted in whole batches"
                );
            }
            let cfg = KvWorkloadConfig {
                batch,
                verify: true,
                ..tiny_cfg(KvMix::UpdateHeavy, KeyDist::Uniform, 2)
            };
            let store = Arc::new(LockFreeKvBench::new(LockFreeKvMap::new(
                512,
                Collector::new(),
            )));
            assert!(run_kv(store, &cfg).total_ops > 0, "lock-free batch {batch}");
        }
    }

    #[test]
    fn build_batch_follows_the_mix_split() {
        let cfg = KvWorkloadConfig {
            mix: KvMix::ReadHeavy,
            batch: 64,
            ..KvWorkloadConfig::sized_for(512)
        };
        let mut state = WorkerState::new(&cfg, 0xABCD);
        state.build_batch(1_000);
        assert_eq!(state.batch_req.len(), 1_000);
        let reads = state
            .batch_req
            .ops()
            .iter()
            .filter(|op| !op.is_write())
            .count();
        // 95/5 split, give or take sampling noise.
        assert!((900..=990).contains(&reads), "{reads} reads of 1000");
        for op in state.batch_req.ops() {
            assert!(op.key() < 512, "key outside the space");
            if let BatchOp::Put(key, value) = op {
                assert!(payload_is_valid(*key, value), "unverifiable payload");
            }
        }
        // Read-only mixes build pure get batches.
        let cfg = KvWorkloadConfig {
            mix: KvMix::ReadOnly,
            batch: 16,
            ..KvWorkloadConfig::sized_for(512)
        };
        let mut state = WorkerState::new(&cfg, 0xABCD);
        state.build_batch(100);
        assert!(state.batch_req.ops().iter().all(|op| !op.is_write()));
    }

    #[test]
    #[should_panic(expected = "does not batch")]
    fn batched_scan_mixes_are_rejected() {
        let cfg = KvWorkloadConfig {
            batch: 8,
            ..tiny_cfg(KvMix::ScanHeavy, KeyDist::Uniform, 1)
        };
        let store = Arc::new(StmKvBench::new(ValShort::new(), 4, 128, ApiMode::Short));
        let _ = run_kv(store, &cfg);
    }

    #[test]
    fn scan_params_draw_sane_lengths_and_insert_keys() {
        let scan = ScanParams::for_keys(1_000);
        let mut rng = Xorshift::new(17);
        let mut max_len = 0;
        for _ in 0..5_000 {
            let len = scan.sample_len(&mut rng);
            assert!((1..=MAX_SCAN_LEN).contains(&len));
            max_len = max_len.max(len);
            let key = scan.insert_key(&mut rng);
            assert!((1_000..2_000).contains(&key), "insert key {key}");
        }
        // The zipfian tail must actually be exercised now and then.
        assert!(max_len > MAX_SCAN_LEN / 2, "longest draw was {max_len}");
    }

    #[test]
    fn ycsb_letters_map_to_mixes() {
        assert_eq!(KvMix::from_ycsb_letter('a'), Some(KvMix::UpdateHeavy));
        assert_eq!(KvMix::from_ycsb_letter('B'), Some(KvMix::ReadHeavy));
        assert_eq!(KvMix::from_ycsb_letter('c'), Some(KvMix::ReadOnly));
        assert_eq!(KvMix::from_ycsb_letter('e'), Some(KvMix::ScanHeavy));
        assert_eq!(KvMix::from_ycsb_letter('f'), Some(KvMix::ReadModifyWrite));
        assert_eq!(KvMix::from_ycsb_letter('d'), None);
        assert_eq!(KeyDist::from_name("Zipfian"), Some(KeyDist::Zipfian));
        assert_eq!(KeyDist::from_name("bogus"), None);
    }

    #[test]
    fn scan_heavy_mix_produces_ordered_scans() {
        // Drive the dispatch directly and check scans come back sorted and
        // bounded from the STM store.
        let bench = StmKvBench::new(ValShort::new(), 4, 64, ApiMode::Short);
        load_keys(&bench, 256, ValueSize::Uniform(1, 64));
        let mut ctx = bench.thread_ctx();
        let scan = ScanParams::for_keys(256);
        let mut rng = Xorshift::new(23);
        for _ in 0..200 {
            let start = rng.next() % 256;
            let len = scan.sample_len(&mut rng);
            let run = bench.scan(start, len, &mut ctx);
            assert!(run.len() <= len);
            assert!(run.windows(2).all(|w| w[0].0 < w[1].0), "unsorted scan");
            assert!(run.iter().all(|(k, _)| *k >= start), "key below start");
            assert!(
                run.iter().all(|(k, v)| payload_is_valid(*k, v)),
                "scan returned a corrupt payload"
            );
        }
    }

    #[test]
    fn variant_runner_covers_the_acceptance_variants() {
        let cfg = tiny_cfg(KvMix::ReadModifyWrite, KeyDist::Zipfian, 1);
        for spec in kv_variants() {
            let thpt = run_kv_variant(spec, &cfg, 1);
            assert!(thpt > 0.0, "{} produced no throughput", spec.label());
        }
    }
}
