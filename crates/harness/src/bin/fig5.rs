//! Regenerates the paper's Figure 5 series (single-threaded overheads).
//!
//! Accepts the same flags as the other `fig*` binaries (`--quick`,
//! `--paper`, `--duration-ms`, …); the per-point duration determines the
//! iteration count (see [`harness::figures::fig5_iters`]).

fn main() {
    let opts = harness::figures::opts_from_args(std::env::args().skip(1));
    let rows = harness::figures::fig5(harness::figures::fig5_iters(&opts));
    harness::figures::print_rows(&rows);
}
