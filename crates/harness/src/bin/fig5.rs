//! Regenerates the paper's Figure 5 series (single-threaded overheads).

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let iters = if quick { 20_000 } else { 200_000 };
    let rows = harness::figures::fig5(iters);
    harness::figures::print_rows(&rows);
}
