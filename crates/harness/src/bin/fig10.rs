//! Regenerates the paper's Fig10 series (see DESIGN.md for the experiment index).

fn main() {
    let opts = harness::figures::opts_from_args(std::env::args().skip(1));
    let rows = harness::figures::fig10(&opts);
    harness::figures::print_rows(&rows);
}
