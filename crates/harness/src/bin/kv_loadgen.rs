//! Network load generator for a running `spectm-serve` server (see
//! EXPERIMENTS.md § "Latency over the wire" for the recipe).
//!
//! Preloads the key space over the wire, then sweeps the selected YCSB
//! mixes under the selected loop disciplines and prints one TSV row per
//! (mix, mode) with batch-latency percentiles from the log-bucketed
//! histogram — p999 under the open loop is the coordinated-omission-honest
//! tail.  With `--verify`, every returned value is checksum-verified
//! during the run and a full oracle sweep of the key space runs at the
//! end; any failure exits non-zero.

use std::time::Duration;

use harness::kv::{KeyDist, KvMix, KvWorkloadConfig, ValueSize};
use harness::loadgen::{preload, run_loadgen, verify_sweep, LoadMode, LoadgenConfig, WireConn};
use spectm_kv::wire::MAX_WIRE_OPS;

const USAGE: &str = "\
Usage: kv-loadgen --addr HOST:PORT [OPTIONS]

Drive a spectm-serve server over the batch wire protocol and report
p50/p99/p999 batch latency.

Options:
  --addr HOST:PORT    server address (required; spectm-serve prints it and
                      can write it to a file via --port-file)
  --workload a,b,c,x  mixes to sweep: a=update-heavy, b=read-heavy,
                      c=read-only, x=read-through cache churn (gets, with
                      fill puts for the previous batch's misses; point the
                      run at a server with --max-bytes to measure eviction)
                      (default a,b,c)
  --mode closed,open  loop disciplines to sweep (default both)
  --connections N     client connections, dealt round-robin across the
                      client threads (default 4)
  --threads N         client threads driving those connections (default:
                      min(connections, available cores); capped at
                      --connections)
  --sweep-connections A,B,C
                      sweep connection counts instead of a single
                      --connections value: one TSV row per (mix, mode,
                      connection count) — the scaling-curve one-liner
  --duration-ms N     measured duration per run (default 500)
  --batch N           operations per request frame (default 16, max 128)
  --rate N            open-loop batches/sec per connection (default 2000)
  --keys N            key-space size, preloaded before the runs (default 65536)
  --dist NAME         key distribution: uniform, zipfian or latest
                      (default uniform)
  --value-size SPEC   payload lengths: fixed:N, uniform:A..B or zipf
                      (default fixed:8)
  --ttl-ms N          attach an N-millisecond TTL to every churn fill put
                      (rides the PUT_TTL opcode; 0 = immortal, the default)
  --verify            checksum-verify every returned value and replay an
                      oracle sweep over the key space afterwards
  --help              print this help
";

fn die(msg: &str) -> ! {
    eprintln!("kv-loadgen: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(value) = value else {
        die(&format!("{flag} needs a value"));
    };
    match value.parse() {
        Ok(v) => v,
        Err(_) => die(&format!("bad value {value:?} for {flag}")),
    }
}

fn mode_label(mode: LoadMode) -> &'static str {
    match mode {
        LoadMode::Closed => "closed",
        LoadMode::Open { .. } => "open",
    }
}

fn main() {
    let mut addr: Option<String> = None;
    let mut mixes = vec![KvMix::UpdateHeavy, KvMix::ReadHeavy, KvMix::ReadOnly];
    let mut modes: Vec<&'static str> = vec!["closed", "open"];
    let mut connections = 4usize;
    let mut threads: Option<usize> = None;
    let mut sweep_connections: Option<Vec<usize>> = None;
    let mut duration_ms = 500u64;
    let mut batch = 16usize;
    let mut rate = 2_000u64;
    let mut keys = 65_536u64;
    let mut dist = KeyDist::Uniform;
    let mut value_size = ValueSize::default();
    let mut ttl_ms = 0u64;
    let mut verify = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = Some(parse(&arg, args.next())),
            "--workload" => {
                let raw: String = parse(&arg, args.next());
                let parsed: Vec<KvMix> = raw
                    .split(',')
                    .filter_map(|s| {
                        let s = s.trim();
                        s.chars()
                            .next()
                            .filter(|_| s.len() == 1)
                            .and_then(KvMix::from_ycsb_letter)
                            .filter(|m| m.supports_batching() || *m == KvMix::Churn)
                    })
                    .collect();
                if parsed.is_empty() || parsed.len() != raw.split(',').count() {
                    die(&format!(
                        "`--workload {raw}` must be a comma list of the wire mixes a, b, c, x"
                    ));
                }
                mixes = parsed;
            }
            "--mode" => {
                let raw: String = parse(&arg, args.next());
                let parsed: Vec<&'static str> = raw
                    .split(',')
                    .filter_map(|s| match s.trim() {
                        "closed" => Some("closed"),
                        "open" => Some("open"),
                        _ => None,
                    })
                    .collect();
                if parsed.is_empty() || parsed.len() != raw.split(',').count() {
                    die(&format!(
                        "`--mode {raw}` must be a comma list of closed, open"
                    ));
                }
                modes = parsed;
            }
            "--connections" => connections = parse(&arg, args.next()),
            "--threads" => threads = Some(parse(&arg, args.next())),
            "--sweep-connections" => {
                let raw: String = parse(&arg, args.next());
                let parsed: Vec<usize> = raw
                    .split(',')
                    .filter_map(|s| s.trim().parse().ok())
                    .filter(|&n| n > 0)
                    .collect();
                if parsed.is_empty() || parsed.len() != raw.split(',').count() {
                    die(&format!(
                        "`--sweep-connections {raw}` must be a comma list of positive counts"
                    ));
                }
                sweep_connections = Some(parsed);
            }
            "--duration-ms" => duration_ms = parse(&arg, args.next()),
            "--batch" => batch = parse(&arg, args.next()),
            "--rate" => rate = parse(&arg, args.next()),
            "--keys" => keys = parse(&arg, args.next()),
            "--dist" => {
                let raw: String = parse(&arg, args.next());
                match KeyDist::from_name(raw.trim()) {
                    Some(d) => dist = d,
                    None => die(&format!("`--dist {raw}` is not uniform, zipfian or latest")),
                }
            }
            "--value-size" => {
                let raw: String = parse(&arg, args.next());
                match ValueSize::from_flag(raw.trim()) {
                    Some(vs) => value_size = vs,
                    None => die(&format!(
                        "`--value-size {raw}` is not fixed:N, uniform:A..B or zipf"
                    )),
                }
            }
            "--ttl-ms" => ttl_ms = parse(&arg, args.next()),
            "--verify" => verify = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => die(&format!("unknown flag {other:?}")),
        }
    }
    let Some(addr) = addr else {
        die("--addr is required");
    };
    if batch == 0 || batch > MAX_WIRE_OPS {
        die(&format!("--batch must be in 1..={MAX_WIRE_OPS}"));
    }
    if connections == 0 {
        die("--connections must be at least 1");
    }
    if threads == Some(0) {
        die("--threads must be at least 1");
    }
    if rate == 0 {
        die("--rate must be at least 1");
    }
    // One row per (mix, mode, connection count); a plain run is a
    // single-point sweep.
    let conn_points = sweep_connections.unwrap_or_else(|| vec![connections]);
    let default_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(8);

    let mut control = match WireConn::connect(addr.as_str()) {
        Ok(conn) => conn,
        Err(e) => {
            eprintln!("kv-loadgen: cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };
    let base = KvWorkloadConfig {
        num_keys: keys,
        dist,
        value_size,
        verify,
        batch,
        default_ttl_ms: ttl_ms,
        ..KvWorkloadConfig::sized_for(keys)
    };
    if let Err(e) = preload(&mut control, &base) {
        eprintln!("kv-loadgen: preload failed: {e}");
        std::process::exit(1);
    }

    println!(
        "mix\tmode\tconnections\tthreads\tbatch\tbatches\tops\tops_per_sec\t\
         p50_us\tp99_us\tp999_us\tmax_us\thit_rate"
    );
    for &mix in &mixes {
        for &mode_name in &modes {
            for &conns in &conn_points {
                let mode = match mode_name {
                    "closed" => LoadMode::Closed,
                    _ => LoadMode::Open {
                        interval: Duration::from_nanos(1_000_000_000 / rate),
                    },
                };
                let run_threads = threads.unwrap_or(default_threads).min(conns);
                let cfg = LoadgenConfig {
                    connections: conns,
                    threads: run_threads,
                    duration: Duration::from_millis(duration_ms),
                    mode,
                    workload: KvWorkloadConfig {
                        mix,
                        ..base.clone()
                    },
                };
                let result = match run_loadgen(addr.as_str(), &cfg) {
                    Ok(result) => result,
                    Err(e) => {
                        eprintln!(
                            "kv-loadgen: {mix:?}/{mode_name} run at {conns} connections \
                             failed: {e}"
                        );
                        std::process::exit(1);
                    }
                };
                let us = |ns: u64| ns as f64 / 1_000.0;
                let hit_rate = match result.hit_rate() {
                    Some(rate) => format!("{rate:.4}"),
                    None => "-".to_string(),
                };
                println!(
                    "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{:.0}\t{:.1}\t{:.1}\t{:.1}\t{:.1}\t{}",
                    mix.ycsb_letter(),
                    mode_label(mode),
                    conns,
                    run_threads,
                    batch,
                    result.batches,
                    result.ops,
                    result.ops_per_sec(),
                    us(result.hist.percentile(50.0)),
                    us(result.hist.percentile(99.0)),
                    us(result.hist.percentile(99.9)),
                    us(result.hist.max_ns()),
                    hit_rate,
                );
            }
        }
    }

    if verify {
        // The oracle sweep asserts every key is still present, which an
        // evicting or expiring server legitimately violates — churn runs
        // keep the per-batch checksum verification but skip the sweep.
        if mixes.contains(&KvMix::Churn) {
            eprintln!("kv-loadgen: churn in the sweep; skipping the full-presence oracle sweep");
        } else {
            if let Err(e) = verify_sweep(&mut control, keys) {
                eprintln!("kv-loadgen: final oracle sweep failed: {e}");
                std::process::exit(1);
            }
            eprintln!("kv-loadgen: verify clean over {keys} keys");
        }
    }
}
