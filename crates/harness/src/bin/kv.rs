//! Throughput sweeps of the sharded transactional KV store (see
//! EXPERIMENTS.md for the workload index).
//!
//! Sweeps threads × mixes × distributions over the short-transaction STM
//! variants, the BaseTM full-transaction shape and the lock-free baseline,
//! printing the same TSV rows as the `fig*` binaries.  Accepts the common
//! flags (`--quick`, `--paper`, `--threads a,b,c`, `--duration-ms`,
//! `--runs`, `--key-range`) plus four of its own:
//!
//! * `--workload a,b,c,e,f,x` — restrict the sweep to the named YCSB core
//!   mixes (a = update 50/50, b = read-heavy 95/5, c = read-only,
//!   e = scan-heavy 95/5, f = multi-key read-modify-write, x = read-through
//!   cache churn: get, then fill on miss).  Default: `b,a,f,e`.
//! * `--dist uniform,zipfian,latest` — restrict the key-popularity
//!   distributions.  Default: all three.
//! * `--value-size fixed:N|uniform:A..B|zipf` — the payload-length
//!   distribution of every written value (default `fixed:8`, the word-sized
//!   inline fast path).  Non-default sizes are appended to the panel label.
//! * `--verify` — checksum-verify every payload read during the run and
//!   replay an oracle sweep over the key space afterwards (costs cycles;
//!   off by default so throughput rows stay honest.  Counter writes make
//!   checksums meaningless for workload `f`, where the flag is ignored).
//! * `--batch N` — drive the stores through `execute_batch` with batches of
//!   N operations instead of the single-key API, amortizing routing and
//!   epoch entry (default 1, the unbatched path).  Point-operation mixes
//!   only; scan and RMW workloads are skipped with a warning when N > 1.
//! * `--capacity N` — override the total capacity hint the store tables are
//!   sized from (default: the key range, which lands near the ~0.75 bucket
//!   load-factor target).  An `N` below the key range undersizes the tables
//!   and drives them to high occupancy — the load-factor stress shape.
//! * `--stats` — instead of a throughput sweep, load the key space into
//!   each variant's store and print one TSV row per variant with its
//!   occupancy and probe-length statistics (keys, load factor, overflow
//!   buckets, fraction of probes within 1 and 2 buckets).
//! * `--max-bytes N` — run the STM stores in cache mode with an N-byte
//!   live-byte budget; the background reclaimer evicts down to it during
//!   the run and each row's `hit_rate` column reports the measured-phase
//!   hit rate.  Size the budget below the working set (keys × (value size
//!   + 128-byte item overhead)) to see eviction.
//! * `--ttl-ms N` — stamp every put with an N-millisecond TTL (cache mode;
//!   0 = immortal, the default).
//! * `--policy freq|fifo` — eviction victim selection in cache mode:
//!   frequency-byte CLOCK (default) or cursor-order FIFO, the baseline the
//!   frequency policy is measured against.
//!
//! `--keys`/`--key-range` plus optionally `--capacity` are the only sizing
//! inputs: bucket counts are derived from the capacity hint, never passed
//! by hand.

use harness::kv::{kv_default_dists, kv_default_mixes, KeyDist, KvCacheArgs, KvMix, ValueSize};
use spectm_kv::EvictionPolicy;

/// The kv-specific flags split off the argument list; `rest` goes to the
/// common parser.
struct KvArgs {
    mixes: Vec<KvMix>,
    dists: Vec<KeyDist>,
    value_size: ValueSize,
    verify: bool,
    batch: usize,
    capacity: Option<usize>,
    cache: KvCacheArgs,
    stats: bool,
    rest: Vec<String>,
}

fn parse_kv_args(args: impl Iterator<Item = String>) -> KvArgs {
    let args: Vec<String> = args.collect();
    let mut mixes = kv_default_mixes();
    let mut dists = kv_default_dists();
    let mut value_size = ValueSize::default();
    let mut verify = false;
    let mut batch = 1usize;
    let mut capacity = None;
    let mut cache = KvCacheArgs::default();
    let mut stats = false;
    let mut rest = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--capacity" => {
                i += 1;
                let raw = args.get(i).cloned().unwrap_or_default();
                match raw.parse::<usize>() {
                    Ok(n) if n >= 1 => capacity = Some(n),
                    _ => {
                        eprintln!("error: `--capacity {raw}` is not a positive key count");
                        std::process::exit(2);
                    }
                }
            }
            "--stats" => stats = true,
            "--max-bytes" => {
                i += 1;
                let raw = args.get(i).cloned().unwrap_or_default();
                match raw.parse::<u64>() {
                    Ok(n) if n >= 1 => cache.max_bytes = Some(n),
                    _ => {
                        eprintln!("error: `--max-bytes {raw}` is not a positive byte count");
                        std::process::exit(2);
                    }
                }
            }
            "--ttl-ms" => {
                i += 1;
                let raw = args.get(i).cloned().unwrap_or_default();
                match raw.parse::<u64>() {
                    Ok(n) => cache.default_ttl_ms = n,
                    _ => {
                        eprintln!("error: `--ttl-ms {raw}` is not a millisecond count");
                        std::process::exit(2);
                    }
                }
            }
            "--policy" => {
                i += 1;
                let raw = args.get(i).cloned().unwrap_or_default();
                cache.policy = match raw.trim() {
                    "freq" => EvictionPolicy::Freq,
                    "fifo" => EvictionPolicy::Fifo,
                    _ => {
                        eprintln!("error: `--policy {raw}` is not freq or fifo");
                        std::process::exit(2);
                    }
                };
            }
            "--batch" => {
                i += 1;
                let raw = args.get(i).cloned().unwrap_or_default();
                match raw.parse::<usize>() {
                    Ok(n) if n >= 1 => batch = n,
                    _ => {
                        eprintln!("error: `--batch {raw}` is not a positive operation count");
                        std::process::exit(2);
                    }
                }
            }
            "--workload" => {
                i += 1;
                let raw = args.get(i).cloned().unwrap_or_default();
                let parsed: Vec<KvMix> = raw
                    .split(',')
                    .filter_map(|s| {
                        let s = s.trim();
                        let mix = s
                            .chars()
                            .next()
                            .filter(|_| s.len() == 1)
                            .and_then(KvMix::from_ycsb_letter);
                        if mix.is_none() {
                            eprintln!(
                                "warning: ignoring workload `{s}` \
                                 (expected one of a, b, c, e, f, x)"
                            );
                        }
                        mix
                    })
                    .collect();
                if parsed.is_empty() {
                    eprintln!(
                        "error: `--workload {raw}` selected no valid mix \
                         (expected a comma list of a, b, c, e, f, x)"
                    );
                    std::process::exit(2);
                }
                mixes = parsed;
            }
            "--dist" => {
                i += 1;
                let raw = args.get(i).cloned().unwrap_or_default();
                let parsed: Vec<KeyDist> = raw
                    .split(',')
                    .filter_map(|s| {
                        let dist = KeyDist::from_name(s.trim());
                        if dist.is_none() {
                            eprintln!(
                                "warning: ignoring distribution `{}` (expected uniform, \
                                 zipfian or latest)",
                                s.trim()
                            );
                        }
                        dist
                    })
                    .collect();
                if parsed.is_empty() {
                    eprintln!(
                        "error: `--dist {raw}` selected no valid distribution \
                         (expected a comma list of uniform, zipfian, latest)"
                    );
                    std::process::exit(2);
                }
                dists = parsed;
            }
            "--value-size" => {
                i += 1;
                let raw = args.get(i).cloned().unwrap_or_default();
                match ValueSize::from_flag(raw.trim()) {
                    Some(vs) => value_size = vs,
                    None => {
                        eprintln!(
                            "error: `--value-size {raw}` is not fixed:N, uniform:A..B or zipf \
                             (sizes up to {} bytes)",
                            spectm_kv::MAX_VALUE_LEN
                        );
                        std::process::exit(2);
                    }
                }
            }
            "--verify" => verify = true,
            other => rest.push(other.to_string()),
        }
        i += 1;
    }
    KvArgs {
        mixes,
        dists,
        value_size,
        verify,
        batch,
        capacity,
        cache,
        stats,
        rest,
    }
}

fn main() {
    let args = parse_kv_args(std::env::args().skip(1));
    let opts = harness::figures::opts_from_args(args.rest.into_iter());
    if args.stats {
        println!(
            "variant\tkeys\tload\thome_buckets\toverflow_buckets\tprobes<=1\tprobes<=2\tmax_probe"
        );
        for (variant, stats) in harness::kv::kv_stats_rows(&opts, args.value_size, args.capacity) {
            println!(
                "{variant}\t{}\t{:.3}\t{}\t{}\t{:.4}\t{:.4}\t{}",
                stats.keys,
                stats.load_factor(),
                stats.home_buckets,
                stats.overflow_buckets,
                stats.fraction_within(1),
                stats.fraction_within(2),
                stats.max_probe(),
            );
        }
        return;
    }
    let rows = harness::kv::kv_rows_for(
        &opts,
        &args.mixes,
        &args.dists,
        args.value_size,
        args.verify,
        args.batch,
        args.capacity,
        args.cache,
    );
    harness::figures::print_rows(&rows);
}
