//! Throughput sweeps of the sharded transactional KV store (see
//! EXPERIMENTS.md for the workload index).
//!
//! Sweeps threads × {read-heavy 95/5, update 50/50, rmw 50/50} ×
//! {uniform, zipfian, latest} over the short-transaction STM variants, the
//! BaseTM full-transaction shape and the lock-free baseline, printing the
//! same TSV rows as the `fig*` binaries.  Accepts the common flags
//! (`--quick`, `--paper`, `--threads a,b,c`, `--duration-ms`, `--runs`,
//! `--key-range`).

fn main() {
    let opts = harness::figures::opts_from_args(std::env::args().skip(1));
    let rows = harness::kv::kv_rows(&opts);
    harness::figures::print_rows(&rows);
}
