//! Shared timed-run scaffolding for the throughput drivers.
//!
//! Both workload drivers (the integer-set driver of [`crate::intset`] and
//! the KV-store driver of [`crate::kv`]) measure the same way: spawn
//! workers, release them through a barrier, sleep for the configured
//! duration, raise a stop flag, and aggregate per-thread operation counts.
//!
//! Workers only check the stop flag between *batches* of operations, so
//! every thread runs up to a batch worth of extra operations after the flag
//! flips, and a straggling thread (contention, preemption, a slow batch)
//! keeps running after the others stopped.  Dividing the summed counts by
//! one shared wall-clock interval therefore skews throughput — badly so at
//! `--quick` durations, where a single 64-op batch can be a visible
//! fraction of the 30 ms window.  Instead, **each thread times its own
//! measured window** (barrier release to loop exit, covering exactly the
//! operations it counted) and the aggregate throughput is the sum of the
//! per-thread rates.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// One worker thread's contribution to a run: how many operations it
/// completed and the window in which it completed them.
#[derive(Debug, Clone, Copy)]
pub struct ThreadSample {
    /// Operations completed by this thread.
    pub ops: u64,
    /// The thread's own measured window (barrier release to loop exit); it
    /// covers every counted operation, including the post-stop batch tail.
    pub window: Duration,
}

impl ThreadSample {
    /// This thread's throughput in operations per second.
    pub fn rate(&self) -> f64 {
        if self.window.is_zero() {
            0.0
        } else {
            self.ops as f64 / self.window.as_secs_f64()
        }
    }
}

/// Runs `threads` workers for (at least) `duration` and returns each
/// thread's sample.
///
/// `make_worker` is invoked **on the worker thread itself** (so per-thread
/// contexts that are not `Send` can be created inside it) and returns the
/// batch closure; each call of the batch closure performs one batch of
/// operations and returns how many it completed.  The stop flag is checked
/// between batches.
pub fn run_timed<F, W>(threads: usize, duration: Duration, make_worker: F) -> Vec<ThreadSample>
where
    F: Fn(usize) -> W + Sync,
    W: FnMut() -> u64,
{
    let stop = AtomicBool::new(false);
    let start_barrier = Barrier::new(threads + 1);
    std::thread::scope(|scope| {
        let stop = &stop;
        let start_barrier = &start_barrier;
        let make_worker = &make_worker;
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                scope.spawn(move || {
                    let mut batch = make_worker(tid);
                    start_barrier.wait();
                    let start = Instant::now();
                    let mut ops = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        ops += batch();
                    }
                    ThreadSample {
                        ops,
                        window: start.elapsed(),
                    }
                })
            })
            .collect();
        start_barrier.wait();
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_thread_reports_a_window_covering_the_duration() {
        let samples = run_timed(3, Duration::from_millis(20), |_tid| {
            || {
                std::hint::black_box(1 + 1);
                1
            }
        });
        assert_eq!(samples.len(), 3);
        for s in &samples {
            assert!(s.ops > 0);
            // A worker descheduled between the barrier release and its own
            // first clock read starts its window late, so on a loaded test
            // machine the window can fall slightly short of the nominal
            // duration; allow a scheduling tolerance.
            assert!(
                s.window >= Duration::from_millis(10),
                "window {:?} far below the 20ms duration",
                s.window
            );
            assert!(s.rate() > 0.0);
        }
    }

    #[test]
    fn worker_contexts_are_created_on_the_worker_thread() {
        // A non-Send context (Rc) must be constructible inside make_worker.
        let samples = run_timed(2, Duration::from_millis(5), |tid| {
            let ctx = std::rc::Rc::new(tid);
            move || {
                std::hint::black_box(*ctx);
                1
            }
        });
        assert!(samples.iter().all(|s| s.ops > 0));
    }
}
