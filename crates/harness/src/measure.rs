//! Shared timed-run scaffolding for the throughput drivers.
//!
//! Both workload drivers (the integer-set driver of [`crate::intset`] and
//! the KV-store driver of [`crate::kv`]) measure the same way: spawn
//! workers, release them through a barrier, sleep for the configured
//! duration, raise a stop flag, and aggregate per-thread operation counts.
//!
//! Workers only check the stop flag between *batches* of operations, so
//! every thread runs up to a batch worth of extra operations after the flag
//! flips, and a straggling thread (contention, preemption, a slow batch)
//! keeps running after the others stopped.  Dividing the summed counts by
//! one shared wall-clock interval therefore skews throughput — badly so at
//! `--quick` durations, where a single 64-op batch can be a visible
//! fraction of the 30 ms window.  Instead, **each thread times its own
//! measured window** (barrier release to loop exit, covering exactly the
//! operations it counted) and the aggregate throughput is the sum of the
//! per-thread rates.
//!
//! The window-measurement logic is testable without touching the wall
//! clock: [`run_timed_with_clock`] accepts the monotonic clock as a
//! closure, and the unit tests drive it with a deterministic tick counter
//! — asserting *exact* windows instead of wall-clock thresholds that only
//! hold on an unloaded machine.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// One worker thread's contribution to a run: how many operations it
/// completed and the window in which it completed them.
#[derive(Debug, Clone, Copy)]
pub struct ThreadSample {
    /// Operations completed by this thread.
    pub ops: u64,
    /// The thread's own measured window (barrier release to loop exit); it
    /// covers every counted operation, including the post-stop batch tail.
    pub window: Duration,
}

impl ThreadSample {
    /// This thread's throughput in operations per second.
    pub fn rate(&self) -> f64 {
        if self.window.is_zero() {
            0.0
        } else {
            self.ops as f64 / self.window.as_secs_f64()
        }
    }
}

/// Runs `threads` workers for (at least) `duration` and returns each
/// thread's sample.
///
/// `make_worker` is invoked **on the worker thread itself** (so per-thread
/// contexts that are not `Send` can be created inside it) and returns the
/// batch closure; each call of the batch closure performs one batch of
/// operations and returns how many it completed.  The stop flag is checked
/// between batches.
pub fn run_timed<F, W>(threads: usize, duration: Duration, make_worker: F) -> Vec<ThreadSample>
where
    F: Fn(usize) -> W + Sync,
    W: FnMut() -> u64,
{
    let t0 = Instant::now();
    run_timed_with_clock(threads, duration, make_worker, move || t0.elapsed())
}

/// [`run_timed`] with the monotonic clock injected: `clock()` returns the
/// time elapsed since an arbitrary fixed origin, and each worker's window
/// is the difference of its two `clock()` readings (barrier release, loop
/// exit).  Production passes `Instant`-based elapsed time; tests pass a
/// deterministic tick counter, making window assertions exact instead of
/// wall-clock-dependent.  (The run's *duration* stays a real sleep — it
/// bounds how long workers run, but no test assertion depends on it.)
pub fn run_timed_with_clock<F, W, C>(
    threads: usize,
    duration: Duration,
    make_worker: F,
    clock: C,
) -> Vec<ThreadSample>
where
    F: Fn(usize) -> W + Sync,
    W: FnMut() -> u64,
    C: Fn() -> Duration + Sync,
{
    let stop = AtomicBool::new(false);
    let start_barrier = Barrier::new(threads + 1);
    std::thread::scope(|scope| {
        let stop = &stop;
        let start_barrier = &start_barrier;
        let make_worker = &make_worker;
        let clock = &clock;
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                scope.spawn(move || {
                    let mut batch = make_worker(tid);
                    start_barrier.wait();
                    let start = clock();
                    let mut ops = 0u64;
                    // ORDERING: the stop flag carries no data — workers
                    // publish their samples via join, which synchronizes.
                    while !stop.load(Ordering::Relaxed) {
                        ops += batch();
                    }
                    ThreadSample {
                        ops,
                        window: clock().saturating_sub(start),
                    }
                })
            })
            .collect();
        start_barrier.wait();
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed); // ORDERING: see the load above
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn rates_are_exact_for_synthetic_samples() {
        // Pure arithmetic — no clock of any kind.
        let s = ThreadSample {
            ops: 500,
            window: Duration::from_millis(250),
        };
        assert_eq!(s.rate(), 2_000.0);
        let zero = ThreadSample {
            ops: 10,
            window: Duration::ZERO,
        };
        assert_eq!(zero.rate(), 0.0, "a zero window must not divide");
    }

    /// Windows under an injected tick clock are *exact*: each worker reads
    /// the clock twice (barrier release, loop exit), so with a counter
    /// that advances one millisecond per reading, every window is a
    /// positive whole number of ticks bounded by the total number of
    /// readings — regardless of scheduling, machine load or the real
    /// duration of the run.
    #[test]
    fn windows_are_exact_under_an_injected_clock() {
        const THREADS: usize = 3;
        let ticks = AtomicU64::new(0);
        let samples = run_timed_with_clock(
            THREADS,
            Duration::from_millis(1),
            |_tid| {
                || {
                    std::hint::black_box(1 + 1);
                    1
                }
            },
            // ORDERING: the tick counter is a test clock; only its final
            // value is checked, after every worker has joined.
            || Duration::from_millis(ticks.fetch_add(1, Ordering::Relaxed)),
        );
        assert_eq!(samples.len(), THREADS);
        assert_eq!(
            // ORDERING: read after all workers joined; join synchronizes.
            ticks.load(Ordering::Relaxed),
            2 * THREADS as u64,
            "each worker reads the clock exactly twice"
        );
        for s in &samples {
            assert!(s.ops > 0);
            let millis = s.window.as_millis() as u64;
            assert!(
                (1..2 * THREADS as u64).contains(&millis),
                "window {millis}ms is not a sane tick delta"
            );
            // The rate is determined by the two readings alone.
            assert_eq!(s.rate(), s.ops as f64 / s.window.as_secs_f64());
        }
    }

    /// A clock that never advances yields zero-width windows, and the rate
    /// degrades to zero instead of dividing by zero — the behaviour the
    /// per-thread aggregation in `RunResult` relies on.
    #[test]
    fn frozen_clocks_produce_zero_windows_not_panics() {
        let samples = run_timed_with_clock(
            2,
            Duration::from_millis(1),
            |_tid| || 1,
            || Duration::from_secs(7),
        );
        for s in &samples {
            assert_eq!(s.window, Duration::ZERO);
            assert_eq!(s.rate(), 0.0);
        }
    }

    /// The production entry point still runs on the real clock; assert
    /// only load-insensitive facts about it (samples exist, work was
    /// counted) — the exact-window properties are pinned by the injected
    /// clock above.
    #[test]
    fn real_clock_smoke() {
        let samples = run_timed(2, Duration::from_millis(5), |_tid| || 1);
        assert_eq!(samples.len(), 2);
        assert!(samples.iter().all(|s| s.ops > 0));
    }

    #[test]
    fn worker_contexts_are_created_on_the_worker_thread() {
        // A non-Send context (Rc) must be constructible inside make_worker.
        let samples = run_timed(2, Duration::from_millis(5), |tid| {
            let ctx = std::rc::Rc::new(tid);
            move || {
                std::hint::black_box(*ctx);
                1
            }
        });
        assert!(samples.iter().all(|s| s.ops > 0));
    }
}
