//! Shared timed-run scaffolding for the throughput drivers.
//!
//! Both workload drivers (the integer-set driver of [`crate::intset`] and
//! the KV-store driver of [`crate::kv`]) measure the same way: spawn
//! workers, release them through a barrier, sleep for the configured
//! duration, raise a stop flag, and aggregate per-thread operation counts.
//!
//! Workers only check the stop flag between *batches* of operations, so
//! every thread runs up to a batch worth of extra operations after the flag
//! flips, and a straggling thread (contention, preemption, a slow batch)
//! keeps running after the others stopped.  Dividing the summed counts by
//! one shared wall-clock interval therefore skews throughput — badly so at
//! `--quick` durations, where a single 64-op batch can be a visible
//! fraction of the 30 ms window.  Instead, **each thread times its own
//! measured window** (barrier release to loop exit, covering exactly the
//! operations it counted) and the aggregate throughput is the sum of the
//! per-thread rates.
//!
//! The window-measurement logic is testable without touching the wall
//! clock: [`run_timed_with_clock`] accepts the monotonic clock as a
//! closure, and the unit tests drive it with a deterministic tick counter
//! — asserting *exact* windows instead of wall-clock thresholds that only
//! hold on an unloaded machine.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// One worker thread's contribution to a run: how many operations it
/// completed and the window in which it completed them.
#[derive(Debug, Clone, Copy)]
pub struct ThreadSample {
    /// Operations completed by this thread.
    pub ops: u64,
    /// The thread's own measured window (barrier release to loop exit); it
    /// covers every counted operation, including the post-stop batch tail.
    pub window: Duration,
}

impl ThreadSample {
    /// This thread's throughput in operations per second.
    pub fn rate(&self) -> f64 {
        if self.window.is_zero() {
            0.0
        } else {
            self.ops as f64 / self.window.as_secs_f64()
        }
    }
}

/// Runs `threads` workers for (at least) `duration` and returns each
/// thread's sample.
///
/// `make_worker` is invoked **on the worker thread itself** (so per-thread
/// contexts that are not `Send` can be created inside it) and returns the
/// batch closure; each call of the batch closure performs one batch of
/// operations and returns how many it completed.  The stop flag is checked
/// between batches.
pub fn run_timed<F, W>(threads: usize, duration: Duration, make_worker: F) -> Vec<ThreadSample>
where
    F: Fn(usize) -> W + Sync,
    W: FnMut() -> u64,
{
    let t0 = Instant::now();
    run_timed_with_clock(threads, duration, make_worker, move || t0.elapsed())
}

/// [`run_timed`] with the monotonic clock injected: `clock()` returns the
/// time elapsed since an arbitrary fixed origin, and each worker's window
/// is the difference of its two `clock()` readings (barrier release, loop
/// exit).  Production passes `Instant`-based elapsed time; tests pass a
/// deterministic tick counter, making window assertions exact instead of
/// wall-clock-dependent.  (The run's *duration* stays a real sleep — it
/// bounds how long workers run, but no test assertion depends on it.)
pub fn run_timed_with_clock<F, W, C>(
    threads: usize,
    duration: Duration,
    make_worker: F,
    clock: C,
) -> Vec<ThreadSample>
where
    F: Fn(usize) -> W + Sync,
    W: FnMut() -> u64,
    C: Fn() -> Duration + Sync,
{
    let stop = AtomicBool::new(false);
    let start_barrier = Barrier::new(threads + 1);
    std::thread::scope(|scope| {
        let stop = &stop;
        let start_barrier = &start_barrier;
        let make_worker = &make_worker;
        let clock = &clock;
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                scope.spawn(move || {
                    let mut batch = make_worker(tid);
                    start_barrier.wait();
                    let start = clock();
                    let mut ops = 0u64;
                    // ORDERING: the stop flag carries no data — workers
                    // publish their samples via join, which synchronizes.
                    while !stop.load(Ordering::Relaxed) {
                        ops += batch();
                    }
                    ThreadSample {
                        ops,
                        window: clock().saturating_sub(start),
                    }
                })
            })
            .collect();
        start_barrier.wait();
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed); // ORDERING: see the load above
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
}

// ---------------------------------------------------------------------------
// Latency: HDR-style log-bucketed histogram and the loop drivers
// ---------------------------------------------------------------------------

/// Sub-bucket resolution of [`LatencyHistogram`]: each power-of-two range
/// is split into `2^SUB_BUCKET_BITS` linear sub-buckets, bounding the
/// relative quantization error at `2^-SUB_BUCKET_BITS` (~3.1%).
const SUB_BUCKET_BITS: u32 = 5;
const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;
/// Values below this are recorded exactly (one bucket per nanosecond).
const EXACT_LIMIT: u64 = 2 * SUB_BUCKETS as u64;
/// Total buckets: the exact range plus 32 sub-buckets for every power of
/// two from `2^6` through `2^63`.
const BUCKETS: usize = EXACT_LIMIT as usize + (64 - 6) * SUB_BUCKETS;

/// An HDR-style log-bucketed latency histogram over nanosecond samples.
///
/// Fixed memory (~15 KiB), constant-time recording, full `u64` range,
/// ≤ ~3.1% relative error per sample: small values land in exact buckets,
/// larger ones in log-linear buckets (the top 5 bits after the leading
/// one select the sub-bucket).  Percentiles report a
/// bucket's **upper** edge (capped at the observed maximum), so a reported
/// p99 is never below the true p99 — the conservative direction for a
/// latency SLO.
///
/// Per-thread histograms [`LatencyHistogram::merge`] losslessly, so worker
/// threads record without synchronization and the aggregate percentiles
/// are exact over the union of samples.
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            total: 0,
            max: 0,
        }
    }

    fn bucket_index(ns: u64) -> usize {
        if ns < EXACT_LIMIT {
            return ns as usize;
        }
        let msb = 63 - ns.leading_zeros(); // >= 6 here
        let shift = msb - SUB_BUCKET_BITS;
        let sub = (ns >> shift) as usize - SUB_BUCKETS;
        EXACT_LIMIT as usize + (msb - 6) as usize * SUB_BUCKETS + sub
    }

    /// The largest value mapping to `index` — what percentiles report.
    fn bucket_upper(index: usize) -> u64 {
        if (index as u64) < EXACT_LIMIT {
            return index as u64;
        }
        let log = index - EXACT_LIMIT as usize;
        let shift = (log / SUB_BUCKETS) as u32 + 1;
        let sub = (log % SUB_BUCKETS) as u64;
        // The topmost buckets' upper edge exceeds u64 (their range ends at
        // u64::MAX); the percentile cap at the observed max applies anyway.
        match (1u64 << shift).checked_mul(SUB_BUCKETS as u64 + sub + 1) {
            Some(edge) => edge - 1,
            None => u64::MAX,
        }
    }

    /// Records one latency sample in nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        self.counts[Self::bucket_index(ns)] += 1;
        self.total += 1;
        self.max = self.max.max(ns);
    }

    /// Records one latency sample (saturating to `u64::MAX` nanoseconds).
    pub fn record(&mut self, latency: Duration) {
        self.record_ns(latency.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Folds another histogram into this one (lossless: buckets align).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// The largest recorded sample, exact (0 when empty).
    pub fn max_ns(&self) -> u64 {
        self.max
    }

    /// The `p`-th percentile in nanoseconds (`p` in `0.0..=100.0`): the
    /// upper edge of the bucket holding the sample of rank
    /// `ceil(p/100 · count)` (at least 1), capped at the exact observed
    /// maximum — so `percentile(100.0)` *is* [`LatencyHistogram::max_ns`].
    /// Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((p / 100.0 * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (index, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Self::bucket_upper(index).min(self.max);
            }
        }
        self.max
    }
}

/// Runs `op` back-to-back until `clock()` passes `duration` (checked after
/// each operation), recording each operation's latency.  Returns how many
/// operations completed.
///
/// This is the **closed loop**: the next request is only issued once the
/// previous response arrived, so a server stall pauses the *schedule* too
/// and shows up in at most one sample — the coordinated-omission blind
/// spot [`drive_open_loop`] exists to avoid.
pub fn drive_closed_loop<C, W>(
    clock: &C,
    duration: Duration,
    op: &mut W,
    hist: &mut LatencyHistogram,
) -> u64
where
    C: Fn() -> Duration,
    W: FnMut(),
{
    let start = clock();
    let deadline = start.saturating_add(duration);
    let mut ops = 0u64;
    loop {
        let issued = clock();
        op();
        let done = clock();
        hist.record(done.saturating_sub(issued));
        ops += 1;
        if done >= deadline {
            return ops;
        }
    }
}

/// Runs `op` on a **fixed schedule** — operation `i` is due at
/// `start + i·interval` — for all operations scheduled inside `duration`,
/// recording each operation's latency **from its scheduled time** to its
/// completion.  Returns how many operations completed.
///
/// This is the open loop: when the server stalls, due operations queue up
/// and every one of them records the stall it sat through, even though the
/// client could not issue it yet.  A closed loop would silently re-plan
/// around the stall (coordinated omission); here the backlog is driven to
/// completion past the nominal deadline and the tail percentiles inflate
/// accordingly.
///
/// `wait_until(t)` must return no earlier than `clock() == t`; production
/// sleeps, tests advance a synthetic clock.  When an operation is already
/// overdue, `wait_until` is not called.
pub fn drive_open_loop<C, U, W>(
    clock: &C,
    wait_until: &U,
    duration: Duration,
    interval: Duration,
    op: &mut W,
    hist: &mut LatencyHistogram,
) -> u64
where
    C: Fn() -> Duration,
    U: Fn(Duration),
    W: FnMut(),
{
    let interval_ns = interval.as_nanos().max(1) as u64;
    let start = clock();
    let mut ops = 0u64;
    loop {
        let scheduled = start.saturating_add(Duration::from_nanos(ops * interval_ns));
        if scheduled >= start.saturating_add(duration) {
            return ops;
        }
        if clock() < scheduled {
            wait_until(scheduled);
        }
        op();
        hist.record(clock().saturating_sub(scheduled));
        ops += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn rates_are_exact_for_synthetic_samples() {
        // Pure arithmetic — no clock of any kind.
        let s = ThreadSample {
            ops: 500,
            window: Duration::from_millis(250),
        };
        assert_eq!(s.rate(), 2_000.0);
        let zero = ThreadSample {
            ops: 10,
            window: Duration::ZERO,
        };
        assert_eq!(zero.rate(), 0.0, "a zero window must not divide");
    }

    /// Windows under an injected tick clock are *exact*: each worker reads
    /// the clock twice (barrier release, loop exit), so with a counter
    /// that advances one millisecond per reading, every window is a
    /// positive whole number of ticks bounded by the total number of
    /// readings — regardless of scheduling, machine load or the real
    /// duration of the run.
    #[test]
    fn windows_are_exact_under_an_injected_clock() {
        const THREADS: usize = 3;
        let ticks = AtomicU64::new(0);
        let samples = run_timed_with_clock(
            THREADS,
            // Wide enough that every worker gets scheduled at least once
            // even while the rest of the suite saturates the machine; the
            // window assertions below depend only on the injected ticks.
            Duration::from_millis(50),
            |_tid| {
                || {
                    std::hint::black_box(1 + 1);
                    1
                }
            },
            // ORDERING: the tick counter is a test clock; only its final
            // value is checked, after every worker has joined.
            || Duration::from_millis(ticks.fetch_add(1, Ordering::Relaxed)),
        );
        assert_eq!(samples.len(), THREADS);
        assert_eq!(
            // ORDERING: read after all workers joined; join synchronizes.
            ticks.load(Ordering::Relaxed),
            2 * THREADS as u64,
            "each worker reads the clock exactly twice"
        );
        for s in &samples {
            assert!(s.ops > 0);
            let millis = s.window.as_millis() as u64;
            assert!(
                (1..2 * THREADS as u64).contains(&millis),
                "window {millis}ms is not a sane tick delta"
            );
            // The rate is determined by the two readings alone.
            assert_eq!(s.rate(), s.ops as f64 / s.window.as_secs_f64());
        }
    }

    /// A clock that never advances yields zero-width windows, and the rate
    /// degrades to zero instead of dividing by zero — the behaviour the
    /// per-thread aggregation in `RunResult` relies on.
    #[test]
    fn frozen_clocks_produce_zero_windows_not_panics() {
        let samples = run_timed_with_clock(
            2,
            Duration::from_millis(1),
            |_tid| || 1,
            || Duration::from_secs(7),
        );
        for s in &samples {
            assert_eq!(s.window, Duration::ZERO);
            assert_eq!(s.rate(), 0.0);
        }
    }

    /// The production entry point still runs on the real clock; assert
    /// only load-insensitive facts about it (samples exist, work was
    /// counted) — the exact-window properties are pinned by the injected
    /// clock above.
    #[test]
    fn real_clock_smoke() {
        let samples = run_timed(2, Duration::from_millis(5), |_tid| || 1);
        assert_eq!(samples.len(), 2);
        assert!(samples.iter().all(|s| s.ops > 0));
    }

    #[test]
    fn worker_contexts_are_created_on_the_worker_thread() {
        // A non-Send context (Rc) must be constructible inside make_worker.
        let samples = run_timed(2, Duration::from_millis(5), |tid| {
            let ctx = std::rc::Rc::new(tid);
            move || {
                std::hint::black_box(*ctx);
                1
            }
        });
        assert!(samples.iter().all(|s| s.ops > 0));
    }

    /// 100 samples of 1..=100 ns pin the percentiles arithmetically: rank
    /// `ceil(p)` out of 100 distinct values.  50 and 99 sit on exact bucket
    /// edges; 100 exercises the observed-maximum cap.
    #[test]
    fn percentiles_are_exact_for_synthetic_ticks() {
        let mut h = LatencyHistogram::new();
        for ns in 1..=100u64 {
            h.record_ns(ns);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.max_ns(), 100);
        assert_eq!(h.percentile(50.0), 50);
        assert_eq!(h.percentile(99.0), 99);
        assert_eq!(h.percentile(99.9), 100, "rank 100 capped at the max");
        assert_eq!(h.percentile(100.0), 100);
        assert_eq!(h.percentile(0.0), 1, "rank clamps to the first sample");
    }

    /// Bucketed values stay within the histogram's advertised ~3.1%
    /// relative error, in the conservative (upper) direction, across the
    /// full magnitude range.
    #[test]
    fn quantization_error_is_bounded_and_upward() {
        for &ns in &[
            1u64,
            63,
            64,
            1_000,
            12_345,
            1_000_000,
            999_999_937,
            u64::MAX / 3,
        ] {
            let mut h = LatencyHistogram::new();
            h.record_ns(ns);
            // A lone sample is both p50 and max, so the cap makes it exact;
            // add a larger sample to expose the raw bucket edge.
            h.record_ns(u64::MAX);
            let p50 = h.percentile(50.0);
            assert!(p50 >= ns, "upper edge must not undershoot {ns}");
            assert!(
                (p50 - ns) as f64 <= ns as f64 / 32.0 + 1.0,
                "bucket edge {p50} too far above {ns}"
            );
        }
    }

    #[test]
    fn merge_is_lossless() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for ns in 1..=100u64 {
            if ns % 2 == 0 { &mut a } else { &mut b }.record_ns(ns);
            whole.record_ns(ns);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.max_ns(), whole.max_ns());
        for p in [0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            assert_eq!(a.percentile(p), whole.percentile(p));
        }
    }

    #[test]
    fn empty_histograms_report_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max_ns(), 0);
        assert_eq!(h.percentile(99.0), 0);
    }

    /// A deterministic single-threaded "server": every operation takes
    /// `service` on the synthetic clock, except one that stalls for
    /// `stall`.  Drives both loop disciplines over it.
    struct StallClock {
        now_ns: std::cell::Cell<u64>,
    }

    impl StallClock {
        fn clock(&self) -> impl Fn() -> Duration + '_ {
            || Duration::from_nanos(self.now_ns.get())
        }

        fn wait_until(&self) -> impl Fn(Duration) + '_ {
            |target| {
                let target = target.as_nanos() as u64;
                if target > self.now_ns.get() {
                    self.now_ns.set(target);
                }
            }
        }

        fn op<'a>(&'a self, service_ns: u64, stall_at: u64, stall_ns: u64) -> impl FnMut() + 'a {
            let mut calls = 0u64;
            move || {
                let cost = if calls == stall_at {
                    stall_ns
                } else {
                    service_ns
                };
                calls += 1;
                self.now_ns.set(self.now_ns.get() + cost);
            }
        }
    }

    const MS: u64 = 1_000_000;

    /// Asserts `actual` is `nominal` up to the histogram's upward-only
    /// quantization (one bucket, ≤ `nominal/32 + 1`).
    fn assert_close(actual: u64, nominal: u64, what: &str) {
        assert!(
            actual >= nominal && actual <= nominal + nominal / 32 + 1,
            "{what}: {actual}ns not within one bucket above {nominal}ns"
        );
    }

    /// The coordinated-omission regression guard.  Same server behaviour —
    /// 0.5 ms service, one 100 ms stall — under both disciplines: the
    /// closed loop sees the stall in exactly one sample and its p999 stays
    /// at the service time, while the open loop charges the stall to every
    /// operation that was due during it and its p999 inflates by two
    /// orders of magnitude.
    #[test]
    fn open_loop_exposes_the_stall_that_closed_loop_hides() {
        let duration = Duration::from_nanos(1_000 * MS);
        let interval = Duration::from_nanos(MS);

        let sim = StallClock {
            now_ns: std::cell::Cell::new(0),
        };
        let mut closed = LatencyHistogram::new();
        let ops = drive_closed_loop(
            &sim.clock(),
            duration,
            &mut sim.op(MS / 2, 100, 100 * MS),
            &mut closed,
        );
        // 0.5 ms per op for 1000 ms, one op costing 100 ms instead: the
        // stall consumed 199 op-slots of schedule time.
        assert_eq!(ops, 2000 - 199);
        assert_close(closed.percentile(50.0), MS / 2, "closed p50");
        // One stalled sample in 1801 sits beyond rank 1800: closed-loop
        // p999 hides the stall entirely.
        assert_close(closed.percentile(99.9), MS / 2, "closed p999");
        assert_eq!(closed.max_ns(), 100 * MS, "the stall itself was recorded");

        let sim = StallClock {
            now_ns: std::cell::Cell::new(0),
        };
        let mut open = LatencyHistogram::new();
        let ops = drive_open_loop(
            &sim.clock(),
            &sim.wait_until(),
            duration,
            interval,
            &mut sim.op(MS / 2, 100, 100 * MS),
            &mut open,
        );
        assert_eq!(ops, 1000, "every scheduled operation ran, late or not");
        assert_close(open.percentile(50.0), MS / 2, "open p50 (service time)");
        let p999 = open.percentile(99.9);
        assert!(
            p999 >= 90 * MS,
            "p999 {p999}ns must charge the 100 ms stall to the queued operations"
        );
        assert!(
            open.percentile(99.0) >= 80 * MS,
            "a fifth of the schedule sat in the stall's backlog"
        );
    }

    /// The open-loop driver keeps to its schedule when the server keeps
    /// up: every sample is exactly the service time.
    #[test]
    fn open_loop_on_schedule_records_pure_service_time() {
        let sim = StallClock {
            now_ns: std::cell::Cell::new(0),
        };
        let mut hist = LatencyHistogram::new();
        let ops = drive_open_loop(
            &sim.clock(),
            &sim.wait_until(),
            Duration::from_nanos(100 * MS),
            Duration::from_nanos(MS),
            &mut sim.op(MS / 4, u64::MAX, 0),
            &mut hist,
        );
        assert_eq!(ops, 100);
        assert_eq!(hist.percentile(50.0), MS / 4);
        assert_eq!(hist.max_ns(), MS / 4);
    }
}
