//! The catalogue of implementation variants used in the paper's figures.
//!
//! A variant is `<layout>-<api>-<clock>` plus the two non-STM baselines.  The
//! builders here assemble the right STM instance, data structure and API mode
//! for a label and run the integer-set workload on it; they are the bridge
//! between the figure drivers (which speak in labels) and the generic,
//! statically-dispatched implementations.

use lockfree::{LockFreeHashTable, LockFreeSkipList, SeqHashTable, SeqSkipList};
use spectm::variants::{OrecStm, TvarStm, ValShort};
use spectm::{Config, Stm};
use spectm_ds::ApiMode;
use txepoch::Collector;

use crate::adapters::{LockFreeBench, SeqBench, StmHashBench, StmSkipBench};
use crate::intset::{run_intset_repeated, WorkloadConfig};

/// One implementation variant, named as in the paper's figure legends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VariantSpec {
    /// Optimized sequential code (single-threaded only).
    Sequential,
    /// Fraser-style CAS-based implementation.
    LockFree,
    /// Orec table, traditional API, global clock (the paper's BaseTM).
    OrecFullG,
    /// Orec table, traditional API, per-orec versions.
    OrecFullL,
    /// Orec table, short-transaction API, global clock.
    OrecShortG,
    /// Orec table, short-transaction API, per-orec versions.
    OrecShortL,
    /// TVar layout, traditional API, global clock.
    TvarFullG,
    /// TVar layout, traditional API, per-orec versions.
    TvarFullL,
    /// TVar layout, short-transaction API, global clock.
    TvarShortG,
    /// TVar layout, short-transaction API, per-orec versions.
    TvarShortL,
    /// Value-based layout, traditional (NOrec-style) API.
    ValFull,
    /// Value-based layout, short-transaction API (the paper's best variant).
    ValShort,
    /// BaseTM driven through fine-grained ordinary transactions
    /// (`orec-full-g (fine)` in Figure 6(a)).
    OrecFullGFine,
}

impl VariantSpec {
    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            VariantSpec::Sequential => "sequential",
            VariantSpec::LockFree => "lock-free",
            VariantSpec::OrecFullG => "orec-full-g",
            VariantSpec::OrecFullL => "orec-full-l",
            VariantSpec::OrecShortG => "orec-short-g",
            VariantSpec::OrecShortL => "orec-short-l",
            VariantSpec::TvarFullG => "tvar-full-g",
            VariantSpec::TvarFullL => "tvar-full-l",
            VariantSpec::TvarShortG => "tvar-short-g",
            VariantSpec::TvarShortL => "tvar-short-l",
            VariantSpec::ValFull => "val-full",
            VariantSpec::ValShort => "val-short",
            VariantSpec::OrecFullGFine => "orec-full-g (fine)",
        }
    }

    /// Parses a label (as printed by [`VariantSpec::label`]).
    pub fn from_label(label: &str) -> Option<Self> {
        Self::all().into_iter().find(|v| v.label() == label)
    }

    /// Every variant, in a stable order.
    pub fn all() -> Vec<VariantSpec> {
        vec![
            VariantSpec::Sequential,
            VariantSpec::LockFree,
            VariantSpec::OrecFullG,
            VariantSpec::OrecFullL,
            VariantSpec::OrecShortG,
            VariantSpec::OrecShortL,
            VariantSpec::TvarFullG,
            VariantSpec::TvarFullL,
            VariantSpec::TvarShortG,
            VariantSpec::TvarShortL,
            VariantSpec::ValFull,
            VariantSpec::ValShort,
            VariantSpec::OrecFullGFine,
        ]
    }

    /// Whether the variant can run with more than one thread.
    pub fn concurrent(self) -> bool {
        self != VariantSpec::Sequential
    }

    pub(crate) fn stm_parts(self) -> Option<(Layout, ApiMode, Config)> {
        let (layout, api, config) = match self {
            VariantSpec::OrecFullG => (Layout::Orec, ApiMode::Full, Config::global()),
            VariantSpec::OrecFullL => (Layout::Orec, ApiMode::Full, Config::local()),
            VariantSpec::OrecShortG => (Layout::Orec, ApiMode::Short, Config::global()),
            VariantSpec::OrecShortL => (Layout::Orec, ApiMode::Short, Config::local()),
            VariantSpec::TvarFullG => (Layout::Tvar, ApiMode::Full, Config::global()),
            VariantSpec::TvarFullL => (Layout::Tvar, ApiMode::Full, Config::local()),
            VariantSpec::TvarShortG => (Layout::Tvar, ApiMode::Short, Config::global()),
            VariantSpec::TvarShortL => (Layout::Tvar, ApiMode::Short, Config::local()),
            VariantSpec::ValFull => (Layout::Val, ApiMode::Full, Config::global()),
            VariantSpec::ValShort => (Layout::Val, ApiMode::Short, Config::global()),
            VariantSpec::OrecFullGFine => (Layout::Orec, ApiMode::Fine, Config::global()),
            _ => return None,
        };
        Some((layout, api, config))
    }
}

/// Meta-data layout component of a variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Layout {
    Orec,
    Tvar,
    Val,
}

/// A smaller orec table than the library default keeps per-run setup cheap
/// while still making false sharing rare for 64k-key workloads.
pub(crate) fn bench_config(mut config: Config) -> Config {
    config.orec_table_size = 1 << 18;
    config
}

/// Runs the hash-table workload for `spec`, returning mean throughput
/// (operations per second) using the paper's repetition policy.
pub fn run_hash_variant(
    spec: VariantSpec,
    buckets: usize,
    cfg: &WorkloadConfig,
    runs: usize,
) -> f64 {
    match spec {
        VariantSpec::Sequential => {
            run_intset_repeated(|| SeqBench::new(SeqHashTable::new(buckets)), cfg, runs)
        }
        VariantSpec::LockFree => run_intset_repeated(
            || LockFreeBench::new(LockFreeHashTable::new(buckets, Collector::new())),
            cfg,
            runs,
        ),
        _ => {
            let (layout, api, config) = spec.stm_parts().expect("STM variant");
            let config = bench_config(config);
            match layout {
                Layout::Orec => run_intset_repeated(
                    || StmHashBench::new(OrecStm::with_config(config), buckets, api),
                    cfg,
                    runs,
                ),
                Layout::Tvar => run_intset_repeated(
                    || StmHashBench::new(TvarStm::with_config(config), buckets, api),
                    cfg,
                    runs,
                ),
                Layout::Val => run_intset_repeated(
                    || StmHashBench::new(ValShort::with_config(config), buckets, api),
                    cfg,
                    runs,
                ),
            }
        }
    }
}

/// Runs the skip-list workload for `spec`, returning mean throughput
/// (operations per second) using the paper's repetition policy.
pub fn run_skip_variant(spec: VariantSpec, cfg: &WorkloadConfig, runs: usize) -> f64 {
    match spec {
        VariantSpec::Sequential => {
            run_intset_repeated(|| SeqBench::new(SeqSkipList::new()), cfg, runs)
        }
        VariantSpec::LockFree => run_intset_repeated(
            || LockFreeBench::new(LockFreeSkipList::new(Collector::new())),
            cfg,
            runs,
        ),
        _ => {
            let (layout, api, config) = spec.stm_parts().expect("STM variant");
            let config = bench_config(config);
            match layout {
                Layout::Orec => run_intset_repeated(
                    || StmSkipBench::new(OrecStm::with_config(config), api),
                    cfg,
                    runs,
                ),
                Layout::Tvar => run_intset_repeated(
                    || StmSkipBench::new(TvarStm::with_config(config), api),
                    cfg,
                    runs,
                ),
                Layout::Val => run_intset_repeated(
                    || StmSkipBench::new(ValShort::with_config(config), api),
                    cfg,
                    runs,
                ),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn labels_roundtrip() {
        for v in VariantSpec::all() {
            assert_eq!(VariantSpec::from_label(v.label()), Some(v));
        }
    }

    #[test]
    fn every_variant_runs_a_tiny_hash_workload() {
        let cfg = WorkloadConfig {
            key_range: 256,
            lookup_pct: 90,
            threads: 1,
            duration: Duration::from_millis(15),
            prefill: true,
        };
        for v in VariantSpec::all() {
            let thpt = run_hash_variant(v, 64, &cfg, 1);
            assert!(thpt > 0.0, "{} produced no throughput", v.label());
        }
    }

    #[test]
    fn every_variant_runs_a_tiny_skip_workload() {
        let cfg = WorkloadConfig {
            key_range: 256,
            lookup_pct: 90,
            threads: 1,
            duration: Duration::from_millis(15),
            prefill: true,
        };
        for v in VariantSpec::all() {
            let thpt = run_skip_variant(v, &cfg, 1);
            assert!(thpt > 0.0, "{} produced no throughput", v.label());
        }
    }
}
