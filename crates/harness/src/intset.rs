//! The integer-set workload driver (Section 4.4).
//!
//! Threads perform a random mix of lookups, insertions and removals with keys
//! drawn uniformly from a fixed range.  Before a run, the set is pre-filled
//! with half the keys of the range; inserts and removes are issued in equal
//! proportion so the set size stays roughly constant (about half the inserts
//! and removes fail, as in the paper).  Each thread times its own measured
//! window (see [`crate::measure`]); the reported throughput is the sum of
//! the per-thread rates.

use std::sync::Arc;
use std::time::Duration;

use serde::Serialize;

use crate::adapters::BenchSet;
use crate::measure::{run_timed, ThreadSample};

/// Operations between consecutive stop-flag checks.
pub(crate) const BATCH_OPS: u64 = 64;

/// Parameters of one integer-set run.
#[derive(Debug, Clone, Serialize)]
pub struct WorkloadConfig {
    /// Keys are drawn uniformly from `0..key_range`.
    pub key_range: u64,
    /// Percentage of operations that are lookups (the rest splits evenly
    /// between inserts and removes).
    pub lookup_pct: u32,
    /// Number of worker threads.
    pub threads: usize,
    /// Wall-clock duration of the measured phase.
    pub duration: Duration,
    /// Whether to pre-fill the structure with half the key range.
    pub prefill: bool,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            key_range: 65_536,
            lookup_pct: 90,
            threads: 1,
            duration: Duration::from_millis(300),
            prefill: true,
        }
    }
}

/// The outcome of one run.
#[derive(Debug, Clone, Serialize)]
pub struct RunResult {
    /// Total completed operations across all threads.
    pub total_ops: u64,
    /// Operations completed by each thread.
    pub per_thread_ops: Vec<u64>,
    /// Each thread's own measured window (covers exactly the operations that
    /// thread counted, including its post-stop batch tail).
    pub per_thread_windows: Vec<Duration>,
    /// Longest per-thread window (the run's wall-clock footprint).
    pub elapsed: Duration,
    /// Operations per second: the sum of the per-thread rates.
    pub throughput: f64,
}

impl RunResult {
    /// Aggregates per-thread samples into a run result.
    pub fn from_samples(samples: Vec<ThreadSample>) -> Self {
        let total_ops: u64 = samples.iter().map(|s| s.ops).sum();
        let throughput: f64 = samples.iter().map(|s| s.rate()).sum();
        let elapsed = samples
            .iter()
            .map(|s| s.window)
            .max()
            .unwrap_or(Duration::ZERO);
        Self {
            total_ops,
            per_thread_ops: samples.iter().map(|s| s.ops).collect(),
            per_thread_windows: samples.iter().map(|s| s.window).collect(),
            elapsed,
            throughput,
        }
    }
}

/// Cheap per-thread xorshift generator (the workload must not be bottlenecked
/// by random-number generation).
pub struct Xorshift(u64);

impl Xorshift {
    /// Seeds the generator (zero seeds are fixed up).
    pub fn new(seed: u64) -> Self {
        Self(seed | 1)
    }

    /// Next raw 64-bit draw.
    // Deliberately named after the C-style RNG convention; this is not an
    // iterator (it never ends and yields by value).
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    /// Next draw mapped to `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// One integer-set operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOp {
    /// Membership query.
    Lookup,
    /// Insertion.
    Insert,
    /// Removal.
    Remove,
}

/// Picks the operation for one raw 64-bit random draw: `lookup_pct` percent
/// lookups, the rest split **exactly evenly** between inserts and removes.
///
/// The split must not be derived from the residual of the percentage dice
/// (`dice % 2` over `lookup_pct..100`): for odd-sized residual ranges that
/// skews the mix — at 95% lookups it yields 40/60 insert/remove, which
/// slowly drains the structure and distorts long runs.  An independent bit
/// of the same draw gives an exact 50/50 split for every `lookup_pct`.
#[inline]
pub fn choose_op(raw: u64, lookup_pct: u32) -> SetOp {
    if raw % 100 < lookup_pct as u64 {
        SetOp::Lookup
    } else if (raw >> 32) & 1 == 0 {
        SetOp::Insert
    } else {
        SetOp::Remove
    }
}

/// Pre-fills `set` with every even key of the range (exactly half the range),
/// which keeps the expected set size identical across implementations.
pub fn prefill<B: BenchSet>(set: &B, key_range: u64) {
    let mut ctx = set.thread_ctx();
    for key in (0..key_range).step_by(2) {
        set.insert(key, &mut ctx);
    }
}

/// Runs the workload once and reports throughput.
///
/// # Panics
///
/// Panics if `cfg.threads > 1` and the implementation does not support
/// concurrency (the sequential baselines).
pub fn run_intset<B: BenchSet>(set: Arc<B>, cfg: &WorkloadConfig) -> RunResult {
    assert!(
        cfg.threads == 1 || set.supports_concurrency(),
        "sequential baseline cannot run with {} threads",
        cfg.threads
    );
    if cfg.prefill {
        prefill(&*set, cfg.key_range);
    }

    let samples = run_timed(cfg.threads, cfg.duration, |tid| {
        let mut ctx = set.thread_ctx();
        let mut rng = Xorshift::new(0x9E37_79B9 * (tid as u64 + 1));
        let set = &set;
        let cfg = cfg.clone();
        move || {
            // Issue a small batch between stop-flag checks.
            for _ in 0..BATCH_OPS {
                let key = rng.next() % cfg.key_range;
                match choose_op(rng.next(), cfg.lookup_pct) {
                    SetOp::Lookup => {
                        std::hint::black_box(set.contains(key, &mut ctx));
                    }
                    SetOp::Insert => {
                        std::hint::black_box(set.insert(key, &mut ctx));
                    }
                    SetOp::Remove => {
                        std::hint::black_box(set.remove(key, &mut ctx));
                    }
                }
            }
            BATCH_OPS
        }
    });
    RunResult::from_samples(samples)
}

/// Runs the workload `runs` times on fresh structures produced by `make_set`
/// and returns the mean throughput after discarding the minimum and maximum
/// (the paper's repetition policy uses six runs).
pub fn run_intset_repeated<B, F>(make_set: F, cfg: &WorkloadConfig, runs: usize) -> f64
where
    B: BenchSet,
    F: Fn() -> B,
{
    assert!(runs >= 1);
    let mut throughputs: Vec<f64> = (0..runs)
        .map(|_| run_intset(Arc::new(make_set()), cfg).throughput)
        .collect();
    throughputs.sort_by(|a, b| a.partial_cmp(b).expect("throughputs are finite"));
    let trimmed: &[f64] = if throughputs.len() > 2 {
        &throughputs[1..throughputs.len() - 1]
    } else {
        &throughputs
    };
    trimmed.iter().sum::<f64>() / trimmed.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapters::{LockFreeBench, SeqBench, StmHashBench};
    use lockfree::{LockFreeHashTable, SeqHashTable};
    use spectm::variants::ValShort;
    use spectm::Stm;
    use spectm_ds::ApiMode;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn quick_cfg(threads: usize) -> WorkloadConfig {
        WorkloadConfig {
            key_range: 512,
            lookup_pct: 80,
            threads,
            duration: Duration::from_millis(40),
            prefill: true,
        }
    }

    #[test]
    fn stm_workload_produces_positive_throughput() {
        let set = Arc::new(StmHashBench::new(ValShort::new(), 128, ApiMode::Short));
        let res = run_intset(set, &quick_cfg(2));
        assert!(res.total_ops > 0);
        assert!(res.throughput > 0.0);
        assert_eq!(res.per_thread_ops.len(), 2);
        assert_eq!(res.per_thread_windows.len(), 2);
    }

    #[test]
    fn lock_free_workload_produces_positive_throughput() {
        let set = Arc::new(LockFreeBench::new(LockFreeHashTable::new(
            128,
            txepoch::Collector::new(),
        )));
        let res = run_intset(set, &quick_cfg(2));
        assert!(res.total_ops > 0);
    }

    #[test]
    fn sequential_workload_runs_single_threaded() {
        let set = Arc::new(SeqBench::new(SeqHashTable::new(128)));
        let res = run_intset(set, &quick_cfg(1));
        assert!(res.total_ops > 0);
    }

    #[test]
    #[should_panic(expected = "sequential baseline")]
    fn sequential_workload_rejects_multiple_threads() {
        let set = Arc::new(SeqBench::new(SeqHashTable::new(128)));
        let _ = run_intset(set, &quick_cfg(2));
    }

    #[test]
    fn repeated_runs_trim_extremes() {
        let cfg = quick_cfg(1);
        let mean = run_intset_repeated(
            || StmHashBench::new(ValShort::new(), 128, ApiMode::Short),
            &cfg,
            3,
        );
        assert!(mean > 0.0);
    }

    /// A [`BenchSet`] whose second registered thread stalls on every
    /// operation: a controllable "straggler" for the measurement-window
    /// regression test below.
    struct StragglerSet {
        registrations: AtomicUsize,
        stall: Duration,
    }

    impl BenchSet for StragglerSet {
        type ThreadCtx = bool; // "am I the straggler?"

        fn thread_ctx(&self) -> bool {
            // ORDERING: registration counter only elects one straggler;
            // no data is published through it.
            self.registrations.fetch_add(1, Ordering::Relaxed) == 1
        }

        fn insert(&self, _key: u64, straggler: &mut bool) -> bool {
            if *straggler {
                std::thread::sleep(self.stall);
            }
            true
        }

        fn remove(&self, _key: u64, straggler: &mut bool) -> bool {
            if *straggler {
                std::thread::sleep(self.stall);
            }
            true
        }

        fn contains(&self, _key: u64, straggler: &mut bool) -> bool {
            if *straggler {
                std::thread::sleep(self.stall);
            }
            true
        }
    }

    /// The measured-window fix, pinned arithmetically: aggregation must be
    /// the sum of per-thread rates, not total ops over the slowest
    /// thread's window.  Synthetic samples reproduce the straggler shape
    /// exactly — a fast thread (3,000 ops in its 30 ms window) next to a
    /// straggler that took 350 ms to drain its final batch — with no clock
    /// anywhere, so the assertions are exact.
    #[test]
    fn from_samples_sums_per_thread_rates() {
        let fast = ThreadSample {
            ops: 3_000,
            window: Duration::from_millis(30),
        };
        let straggler = ThreadSample {
            ops: 64,
            window: Duration::from_millis(350),
        };
        let res = RunResult::from_samples(vec![fast, straggler]);
        assert_eq!(res.total_ops, 3_064);
        assert_eq!(res.elapsed, Duration::from_millis(350), "longest window");
        assert_eq!(res.throughput, fast.rate() + straggler.rate());
        // The pre-fix aggregate (total ops over the full wall window)
        // dilutes the fast thread's rate by the straggler's overrun.
        let old_estimate = res.total_ops as f64 / res.elapsed.as_secs_f64();
        assert!(
            res.throughput > 10.0 * old_estimate,
            "per-thread windows no longer correct the straggler skew: \
             {} vs old {}",
            res.throughput,
            old_estimate
        );
    }

    /// End-to-end companion of the arithmetic pin above: a real straggler
    /// thread needs ~`64 * 5 ms ≈ 320 ms` to drain its final batch after
    /// the 30 ms stop flag.  Every assertion here is driven by the forced
    /// sleeps (320 ms dwarfs the 30 ms phase by design), not by scheduler
    /// fairness — window-vs-duration comparisons on the *fast* thread,
    /// which depend on when the OS runs it, live in the injected-clock
    /// tests of `crate::measure` instead.
    #[test]
    fn throughput_is_not_skewed_by_post_stop_stragglers() {
        let set = Arc::new(StragglerSet {
            registrations: AtomicUsize::new(0),
            stall: Duration::from_millis(5),
        });
        let cfg = WorkloadConfig {
            key_range: 64,
            lookup_pct: 100,
            threads: 2,
            duration: Duration::from_millis(30),
            prefill: false,
        };
        let res = run_intset(set, &cfg);
        assert_eq!(res.per_thread_ops.len(), 2);
        // The straggler really did overrun the measured phase (320 ms of
        // forced sleeps against a 30 ms phase)…
        assert!(
            res.elapsed > cfg.duration * 3,
            "straggler finished too quickly ({:?}) for the regression to bite",
            res.elapsed
        );
        // …and the old aggregate (total ops over the full wall window)
        // must be a gross underestimate of the per-thread-rate aggregate.
        // The 4x margin is backed by the ~10x sleep-driven skew.
        let old_estimate = res.total_ops as f64 / res.elapsed.as_secs_f64();
        assert!(
            res.throughput > 4.0 * old_estimate,
            "per-thread windows no longer correct the straggler skew: \
             {} vs old {}",
            res.throughput,
            old_estimate
        );
    }

    /// Regression test for the insert/remove split: with 95% lookups the
    /// old `dice % 2` split sent 40/60 of the residual to insert/remove;
    /// the independent-bit split must stay balanced for every lookup_pct.
    #[test]
    fn insert_remove_split_is_balanced_for_odd_residuals() {
        for lookup_pct in [0u32, 10, 50, 90, 95, 97] {
            let mut rng = Xorshift::new(0xABCD_EF01);
            let (mut lookups, mut inserts, mut removes) = (0u64, 0u64, 0u64);
            const DRAWS: u64 = 200_000;
            for _ in 0..DRAWS {
                match choose_op(rng.next(), lookup_pct) {
                    SetOp::Lookup => lookups += 1,
                    SetOp::Insert => inserts += 1,
                    SetOp::Remove => removes += 1,
                }
            }
            let lookup_share = lookups as f64 / DRAWS as f64;
            assert!(
                (lookup_share - lookup_pct as f64 / 100.0).abs() < 0.01,
                "lookup share {lookup_share} at {lookup_pct}%"
            );
            let updates = inserts + removes;
            if updates > 0 {
                let insert_share = inserts as f64 / updates as f64;
                assert!(
                    (insert_share - 0.5).abs() < 0.02,
                    "insert/remove split {insert_share} at {lookup_pct}% lookups"
                );
            }
        }
    }
}
