//! The integer-set workload driver (Section 4.4).
//!
//! Threads perform a random mix of lookups, insertions and removals with keys
//! drawn uniformly from a fixed range.  Before a run, the set is pre-filled
//! with half the keys of the range; inserts and removes are issued in equal
//! proportion so the set size stays roughly constant (about half the inserts
//! and removes fail, as in the paper).  Throughput is the total number of
//! completed operations divided by the wall-clock duration.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::Serialize;

use crate::adapters::BenchSet;

/// Parameters of one integer-set run.
#[derive(Debug, Clone, Serialize)]
pub struct WorkloadConfig {
    /// Keys are drawn uniformly from `0..key_range`.
    pub key_range: u64,
    /// Percentage of operations that are lookups (the rest splits evenly
    /// between inserts and removes).
    pub lookup_pct: u32,
    /// Number of worker threads.
    pub threads: usize,
    /// Wall-clock duration of the measured phase.
    pub duration: Duration,
    /// Whether to pre-fill the structure with half the key range.
    pub prefill: bool,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            key_range: 65_536,
            lookup_pct: 90,
            threads: 1,
            duration: Duration::from_millis(300),
            prefill: true,
        }
    }
}

/// The outcome of one run.
#[derive(Debug, Clone, Serialize)]
pub struct RunResult {
    /// Total completed operations across all threads.
    pub total_ops: u64,
    /// Operations completed by each thread.
    pub per_thread_ops: Vec<u64>,
    /// Measured wall-clock duration.
    pub elapsed: Duration,
    /// Operations per second.
    pub throughput: f64,
}

impl RunResult {
    fn from_counts(per_thread_ops: Vec<u64>, elapsed: Duration) -> Self {
        let total_ops: u64 = per_thread_ops.iter().sum();
        let throughput = total_ops as f64 / elapsed.as_secs_f64();
        Self {
            total_ops,
            per_thread_ops,
            elapsed,
            throughput,
        }
    }
}

/// Cheap per-thread xorshift generator (the workload must not be bottlenecked
/// by random-number generation).
struct Xorshift(u64);

impl Xorshift {
    fn new(seed: u64) -> Self {
        Self(seed | 1)
    }

    #[inline]
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// Pre-fills `set` with every even key of the range (exactly half the range),
/// which keeps the expected set size identical across implementations.
pub fn prefill<B: BenchSet>(set: &B, key_range: u64) {
    let mut ctx = set.thread_ctx();
    for key in (0..key_range).step_by(2) {
        set.insert(key, &mut ctx);
    }
}

/// Runs the workload once and reports throughput.
///
/// # Panics
///
/// Panics if `cfg.threads > 1` and the implementation does not support
/// concurrency (the sequential baselines).
pub fn run_intset<B: BenchSet>(set: Arc<B>, cfg: &WorkloadConfig) -> RunResult {
    assert!(
        cfg.threads == 1 || set.supports_concurrency(),
        "sequential baseline cannot run with {} threads",
        cfg.threads
    );
    if cfg.prefill {
        prefill(&*set, cfg.key_range);
    }

    let stop = Arc::new(AtomicBool::new(false));
    let start_barrier = Arc::new(std::sync::Barrier::new(cfg.threads + 1));
    let mut joins = Vec::with_capacity(cfg.threads);
    for tid in 0..cfg.threads {
        let set = Arc::clone(&set);
        let stop = Arc::clone(&stop);
        let barrier = Arc::clone(&start_barrier);
        let cfg = cfg.clone();
        joins.push(std::thread::spawn(move || {
            let mut ctx = set.thread_ctx();
            let mut rng = Xorshift::new(0x9E37_79B9 * (tid as u64 + 1));
            barrier.wait();
            let mut ops = 0u64;
            while !stop.load(Ordering::Relaxed) {
                // Issue a small batch between stop-flag checks.
                for _ in 0..64 {
                    let key = rng.next() % cfg.key_range;
                    let dice = rng.next() % 100;
                    if dice < cfg.lookup_pct as u64 {
                        std::hint::black_box(set.contains(key, &mut ctx));
                    } else if dice % 2 == 0 {
                        std::hint::black_box(set.insert(key, &mut ctx));
                    } else {
                        std::hint::black_box(set.remove(key, &mut ctx));
                    }
                    ops += 1;
                }
            }
            ops
        }));
    }

    start_barrier.wait();
    let start = Instant::now();
    std::thread::sleep(cfg.duration);
    stop.store(true, Ordering::Relaxed);
    let per_thread: Vec<u64> = joins.into_iter().map(|j| j.join().unwrap()).collect();
    let elapsed = start.elapsed();
    RunResult::from_counts(per_thread, elapsed)
}

/// Runs the workload `runs` times on fresh structures produced by `make_set`
/// and returns the mean throughput after discarding the minimum and maximum
/// (the paper's repetition policy uses six runs).
pub fn run_intset_repeated<B, F>(make_set: F, cfg: &WorkloadConfig, runs: usize) -> f64
where
    B: BenchSet,
    F: Fn() -> B,
{
    assert!(runs >= 1);
    let mut throughputs: Vec<f64> = (0..runs)
        .map(|_| run_intset(Arc::new(make_set()), cfg).throughput)
        .collect();
    throughputs.sort_by(|a, b| a.partial_cmp(b).expect("throughputs are finite"));
    let trimmed: &[f64] = if throughputs.len() > 2 {
        &throughputs[1..throughputs.len() - 1]
    } else {
        &throughputs
    };
    trimmed.iter().sum::<f64>() / trimmed.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapters::{LockFreeBench, SeqBench, StmHashBench};
    use lockfree::{LockFreeHashTable, SeqHashTable};
    use spectm::variants::ValShort;
    use spectm::Stm;
    use spectm_ds::ApiMode;

    fn quick_cfg(threads: usize) -> WorkloadConfig {
        WorkloadConfig {
            key_range: 512,
            lookup_pct: 80,
            threads,
            duration: Duration::from_millis(40),
            prefill: true,
        }
    }

    #[test]
    fn stm_workload_produces_positive_throughput() {
        let set = Arc::new(StmHashBench::new(ValShort::new(), 128, ApiMode::Short));
        let res = run_intset(set, &quick_cfg(2));
        assert!(res.total_ops > 0);
        assert!(res.throughput > 0.0);
        assert_eq!(res.per_thread_ops.len(), 2);
    }

    #[test]
    fn lock_free_workload_produces_positive_throughput() {
        let set = Arc::new(LockFreeBench::new(LockFreeHashTable::new(
            128,
            txepoch::Collector::new(),
        )));
        let res = run_intset(set, &quick_cfg(2));
        assert!(res.total_ops > 0);
    }

    #[test]
    fn sequential_workload_runs_single_threaded() {
        let set = Arc::new(SeqBench::new(SeqHashTable::new(128)));
        let res = run_intset(set, &quick_cfg(1));
        assert!(res.total_ops > 0);
    }

    #[test]
    #[should_panic(expected = "sequential baseline")]
    fn sequential_workload_rejects_multiple_threads() {
        let set = Arc::new(SeqBench::new(SeqHashTable::new(128)));
        let _ = run_intset(set, &quick_cfg(2));
    }

    #[test]
    fn repeated_runs_trim_extremes() {
        let cfg = quick_cfg(1);
        let mean = run_intset_repeated(
            || StmHashBench::new(ValShort::new(), 128, ApiMode::Short),
            &cfg,
            3,
        );
        assert!(mean > 0.0);
    }
}
