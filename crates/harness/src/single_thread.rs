//! The single-threaded synthetic workload of Figure 5.
//!
//! An array of cache-line-aligned transactional cells is accessed by a large
//! number of short transactions on randomly chosen items: single-location
//! reads, read-only transactions over 2 or 4 consecutive items, and
//! read-write transactions over 1, 2 or 4 consecutive items.  Execution time
//! is normalized to sequential code performing the same number of ordinary
//! loads (for the read-only kinds) or single-word CASes (for the read-write
//! kinds).  The array size is varied so that the working set fits in L1, L2
//! or L3, controlling the cache-miss rate.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use serde::Serialize;
use spectm::{encode_int, Stm, StmThread};
use spectm_ds::ApiMode;

/// The transaction shapes measured in Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TxKind {
    /// `Tx_Single_Read`.
    SingleRead,
    /// Read-only transaction over 2 consecutive items.
    Ro2,
    /// Read-only transaction over 4 consecutive items.
    Ro4,
    /// Read-write transaction over 1 item.
    Rw1,
    /// Read-write transaction over 2 consecutive items.
    Rw2,
    /// Read-write transaction over 4 consecutive items.
    Rw4,
}

impl TxKind {
    /// All kinds, in the order the figure lists them.
    pub fn all() -> [TxKind; 6] {
        [
            TxKind::SingleRead,
            TxKind::Ro2,
            TxKind::Ro4,
            TxKind::Rw1,
            TxKind::Rw2,
            TxKind::Rw4,
        ]
    }

    /// Label used when printing results.
    pub fn label(self) -> &'static str {
        match self {
            TxKind::SingleRead => "single-read",
            TxKind::Ro2 => "ro-2",
            TxKind::Ro4 => "ro-4",
            TxKind::Rw1 => "rw-1",
            TxKind::Rw2 => "rw-2",
            TxKind::Rw4 => "rw-4",
        }
    }

    /// Number of locations the transaction touches.
    pub fn width(self) -> usize {
        match self {
            TxKind::SingleRead | TxKind::Rw1 => 1,
            TxKind::Ro2 | TxKind::Rw2 => 2,
            TxKind::Ro4 | TxKind::Rw4 => 4,
        }
    }

    /// Whether the transaction writes.
    pub fn is_write(self) -> bool {
        matches!(self, TxKind::Rw1 | TxKind::Rw2 | TxKind::Rw4)
    }
}

/// A transactional cell padded to its own cache line, as in the paper's
/// synthetic workload.
#[repr(align(64))]
struct Padded<T>(T);

struct Xorshift(u64);

impl Xorshift {
    #[inline]
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// Nanoseconds per operation for the *sequential* baseline of `kind`:
/// ordinary loads for read-only kinds, a single-word CAS per item for
/// read-write kinds.
pub fn sequential_ns_per_op(kind: TxKind, array_size: usize, iters: usize) -> f64 {
    let cells: Vec<Padded<AtomicUsize>> = (0..array_size)
        .map(|i| Padded(AtomicUsize::new(i * 2)))
        .collect();
    let width = kind.width();
    let mut rng = Xorshift(0x1234_5678_9abc_def1);
    let start = Instant::now();
    let mut sink = 0usize;
    for _ in 0..iters {
        let base = (rng.next() as usize) % (array_size - width + 1);
        if kind.is_write() {
            for j in 0..width {
                let cell = &cells[base + j].0;
                // ORDERING: single-threaded cost model — the orderings
                // mirror the fences the real STM write path would issue
                // (AcqRel CAS per acquired location), not synchronization.
                let cur = cell.load(Ordering::Relaxed);
                let _ = cell.compare_exchange(
                    cur,
                    cur.wrapping_add(2),
                    Ordering::AcqRel,  // ORDERING: as above
                    Ordering::Relaxed, // ORDERING: as above
                );
            }
        } else {
            for j in 0..width {
                // ORDERING: mirrors the real read path's Acquire load.
                sink = sink.wrapping_add(cells[base + j].0.load(Ordering::Acquire));
            }
        }
    }
    std::hint::black_box(sink);
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Nanoseconds per operation for STM variant `S` driving `kind` through
/// either the traditional (`ApiMode::Full`) or specialized (`ApiMode::Short`)
/// interface.
pub fn stm_ns_per_op<S: Stm>(
    stm: &S,
    api: ApiMode,
    kind: TxKind,
    array_size: usize,
    iters: usize,
) -> f64 {
    let cells: Vec<Padded<S::Cell>> = (0..array_size)
        .map(|i| Padded(stm.new_cell(encode_int(i))))
        .collect();
    let mut thread = stm.register();
    let width = kind.width();
    let mut rng = Xorshift(0x9876_5432_10fe_dcb1);
    let start = Instant::now();
    let mut sink = 0usize;
    for _ in 0..iters {
        let base = (rng.next() as usize) % (array_size - width + 1);
        match (api, kind) {
            // ---- specialized short transactions ----
            (ApiMode::Short | ApiMode::Fine, TxKind::SingleRead) => {
                sink = sink.wrapping_add(thread.single_read(&cells[base].0));
            }
            (ApiMode::Short | ApiMode::Fine, TxKind::Ro2 | TxKind::Ro4) => loop {
                for j in 0..width {
                    sink = sink.wrapping_add(thread.ro_read(j, &cells[base + j].0));
                }
                if thread.ro_is_valid(width) {
                    break;
                }
            },
            (ApiMode::Short | ApiMode::Fine, TxKind::Rw1 | TxKind::Rw2 | TxKind::Rw4) => loop {
                let mut vals = [0usize; 4];
                for j in 0..width {
                    vals[j] = thread.rw_read(j, &cells[base + j].0);
                }
                if !thread.rw_is_valid(width) {
                    continue;
                }
                for v in vals.iter_mut().take(width) {
                    *v = encode_int(spectm::decode_int(*v) + 1);
                }
                if thread.rw_commit(width, &vals[..width]) {
                    break;
                }
            },
            // ---- traditional transactions ----
            (ApiMode::Full, TxKind::SingleRead | TxKind::Ro2 | TxKind::Ro4) => {
                let sum = thread
                    .atomic(|tx| {
                        let mut s = 0usize;
                        for j in 0..width {
                            s = s.wrapping_add(tx.read(&cells[base + j].0)?);
                        }
                        Ok(s)
                    })
                    .expect("read transaction is never cancelled");
                sink = sink.wrapping_add(sum);
            }
            (ApiMode::Full, TxKind::Rw1 | TxKind::Rw2 | TxKind::Rw4) => {
                thread
                    .atomic(|tx| {
                        for j in 0..width {
                            let v = tx.read(&cells[base + j].0)?;
                            tx.write(&cells[base + j].0, encode_int(spectm::decode_int(v) + 1))?;
                        }
                        Ok(())
                    })
                    .expect("write transaction is never cancelled");
            }
        }
    }
    std::hint::black_box(sink);
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// One row of the Figure 5 output.
#[derive(Debug, Clone, Serialize)]
pub struct Fig5Row {
    /// Array size in elements (128, 1024 or 32768 in the paper).
    pub array_size: usize,
    /// Variant label (e.g. `val-short`).
    pub variant: String,
    /// Transaction kind label.
    pub kind: &'static str,
    /// Execution time normalized to the sequential baseline (1.0 = equal).
    pub normalized_time: f64,
    /// Absolute nanoseconds per operation.
    pub ns_per_op: f64,
}

/// Runs the Figure 5 sweep for the paper's variant set.
pub fn run_fig5(array_sizes: &[usize], iters: usize) -> Vec<Fig5Row> {
    use spectm::variants::{OrecStm, TvarStm, ValShort};
    use spectm::Config;

    let mut rows = Vec::new();
    for &size in array_sizes {
        for kind in TxKind::all() {
            let seq = sequential_ns_per_op(kind, size, iters);
            rows.push(Fig5Row {
                array_size: size,
                variant: "sequential".into(),
                kind: kind.label(),
                normalized_time: 1.0,
                ns_per_op: seq,
            });
            let mut push = |variant: &str, ns: f64| {
                rows.push(Fig5Row {
                    array_size: size,
                    variant: variant.into(),
                    kind: kind.label(),
                    normalized_time: ns / seq,
                    ns_per_op: ns,
                });
            };
            let config = Config {
                orec_table_size: 1 << 18,
                ..Config::global()
            };
            let orec = OrecStm::with_config(config);
            push(
                "orec-full-g",
                stm_ns_per_op(&orec, ApiMode::Full, kind, size, iters),
            );
            push(
                "orec-short-g",
                stm_ns_per_op(&orec, ApiMode::Short, kind, size, iters),
            );
            let tvar = TvarStm::with_config(config);
            push(
                "tvar-short-g",
                stm_ns_per_op(&tvar, ApiMode::Short, kind, size, iters),
            );
            let val = ValShort::with_config(config);
            push(
                "val-full",
                stm_ns_per_op(&val, ApiMode::Full, kind, size, iters),
            );
            push(
                "val-short",
                stm_ns_per_op(&val, ApiMode::Short, kind, size, iters),
            );
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use spectm::variants::ValShort;

    #[test]
    fn kinds_report_sensible_widths() {
        assert_eq!(TxKind::SingleRead.width(), 1);
        assert_eq!(TxKind::Ro4.width(), 4);
        assert!(TxKind::Rw2.is_write());
        assert!(!TxKind::Ro2.is_write());
    }

    #[test]
    fn sequential_baseline_is_positive() {
        for kind in TxKind::all() {
            assert!(sequential_ns_per_op(kind, 128, 2_000) > 0.0);
        }
    }

    #[test]
    fn stm_measurement_runs_for_all_kinds() {
        let stm = ValShort::new();
        for kind in TxKind::all() {
            let short = stm_ns_per_op(&stm, ApiMode::Short, kind, 128, 2_000);
            let full = stm_ns_per_op(&stm, ApiMode::Full, kind, 128, 2_000);
            assert!(short > 0.0 && full > 0.0);
        }
    }

    #[test]
    fn fig5_rows_cover_every_variant_and_kind() {
        let rows = run_fig5(&[128], 500);
        // 6 variants (incl. sequential) x 6 kinds.
        assert_eq!(rows.len(), 36);
        assert!(rows.iter().all(|r| r.ns_per_op > 0.0));
    }
}
