//! One driver per figure of the paper's evaluation.
//!
//! Each `figN` function produces the series of the corresponding figure as
//! plain rows (figure, panel, series label, x value, y value) so the `fig*`
//! binaries and the Criterion benches can print or assert on them.  The
//! defaults are scaled down so a full figure regenerates in seconds on a
//! laptop; pass [`FigureOpts::paper`] sized options to approach the paper's
//! durations and thread counts (the shape, not the absolute numbers, is what
//! the reproduction targets — see EXPERIMENTS.md).

use std::time::Duration;

use serde::Serialize;

use crate::intset::WorkloadConfig;
use crate::single_thread::run_fig5;
use crate::variants::{run_hash_variant, run_skip_variant, VariantSpec};

/// Options shared by every figure driver.
#[derive(Debug, Clone)]
pub struct FigureOpts {
    /// Thread counts to sweep.
    pub threads: Vec<usize>,
    /// Measured duration per data point.
    pub duration: Duration,
    /// Runs per data point (min and max are discarded when > 2).
    pub runs: usize,
    /// Key range of the integer-set workloads.
    pub key_range: u64,
}

impl Default for FigureOpts {
    fn default() -> Self {
        Self {
            threads: default_thread_sweep(),
            duration: Duration::from_millis(250),
            runs: 3,
            key_range: 65_536,
        }
    }
}

impl FigureOpts {
    /// A fast smoke configuration (used by `--quick` and by the tests).
    pub fn quick() -> Self {
        Self {
            threads: vec![1, 2],
            duration: Duration::from_millis(30),
            runs: 1,
            key_range: 4_096,
        }
    }

    /// A configuration close to the paper's methodology (six runs, one-second
    /// points, 64k keys); thread counts still depend on the host.
    pub fn paper() -> Self {
        Self {
            threads: default_thread_sweep(),
            duration: Duration::from_secs(1),
            runs: 6,
            key_range: 65_536,
        }
    }
}

/// Threads to sweep by default: powers of two up to the host's parallelism,
/// always including 1.
pub fn default_thread_sweep() -> Vec<usize> {
    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut sweep = vec![1usize];
    let mut t = 2;
    while t <= max {
        sweep.push(t);
        t *= 2;
    }
    if !sweep.contains(&max) {
        sweep.push(max);
    }
    sweep
}

/// One data point of a figure.
#[derive(Debug, Clone, Serialize)]
pub struct FigureRow {
    /// Figure identifier, e.g. `"fig6"`.
    pub figure: &'static str,
    /// Panel within the figure, e.g. `"(a) 90% lookups"`.
    pub panel: String,
    /// Series label (variant name).
    pub series: String,
    /// X coordinate (thread count, or array size for Figure 5).
    pub x: f64,
    /// Y value (throughput in ops/s, or normalized value).
    pub y: f64,
    /// Cache hit rate over the measured phase, for cache-mode KV sweeps
    /// (`None` — rendered as `-` — everywhere else).
    pub hit_rate: Option<f64>,
}

impl FigureRow {
    /// Renders the row as a tab-separated line.
    pub fn tsv(&self) -> String {
        let hit_rate = match self.hit_rate {
            Some(rate) => format!("{rate:.4}"),
            None => "-".to_string(),
        };
        format!(
            "{}\t{}\t{}\t{}\t{:.1}\t{}",
            self.figure, self.panel, self.series, self.x, self.y, hit_rate
        )
    }
}

/// Prints rows with a header, as the `fig*` binaries do.
pub fn print_rows(rows: &[FigureRow]) {
    println!("figure\tpanel\tseries\tx\ty\thit_rate");
    for row in rows {
        println!("{}", row.tsv());
    }
}

/// Which data structure a figure sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Structure {
    Hash { buckets: usize },
    Skip,
}

/// Sweeps `variants` over the thread counts for one panel.
#[expect(clippy::too_many_arguments)]
fn sweep(
    figure: &'static str,
    panel: &str,
    structure: Structure,
    lookup_pct: u32,
    variants: &[VariantSpec],
    opts: &FigureOpts,
    normalize_to_sequential: bool,
    rows: &mut Vec<FigureRow>,
) {
    // The sequential reference point is measured once, single-threaded.
    let seq_throughput = if normalize_to_sequential {
        let cfg = WorkloadConfig {
            key_range: opts.key_range,
            lookup_pct,
            threads: 1,
            duration: opts.duration,
            prefill: true,
        };
        Some(match structure {
            Structure::Hash { buckets } => {
                run_hash_variant(VariantSpec::Sequential, buckets, &cfg, opts.runs)
            }
            Structure::Skip => run_skip_variant(VariantSpec::Sequential, &cfg, opts.runs),
        })
    } else {
        None
    };

    for &variant in variants {
        for &threads in &opts.threads {
            if threads > 1 && !variant.concurrent() {
                continue;
            }
            let cfg = WorkloadConfig {
                key_range: opts.key_range,
                lookup_pct,
                threads,
                duration: opts.duration,
                prefill: true,
            };
            let throughput = match structure {
                Structure::Hash { buckets } => run_hash_variant(variant, buckets, &cfg, opts.runs),
                Structure::Skip => run_skip_variant(variant, &cfg, opts.runs),
            };
            let y = match seq_throughput {
                Some(seq) if seq > 0.0 => throughput / seq,
                _ => throughput,
            };
            rows.push(FigureRow {
                figure,
                panel: panel.to_string(),
                series: variant.label().to_string(),
                x: threads as f64,
                y,
                hit_rate: None,
            });
        }
    }
}

/// Figure 1: hash table, 90% lookups, throughput normalized to sequential.
pub fn fig1(opts: &FigureOpts) -> Vec<FigureRow> {
    let variants = [
        VariantSpec::LockFree,
        VariantSpec::ValShort,
        VariantSpec::TvarShortG,
        VariantSpec::OrecShortG,
        VariantSpec::OrecFullG,
    ];
    let mut rows = Vec::new();
    sweep(
        "fig1",
        "hash table, 90% lookups (normalized to sequential)",
        Structure::Hash { buckets: 16_384 },
        90,
        &variants,
        opts,
        true,
        &mut rows,
    );
    rows
}

/// Figure 5: single-threaded synthetic array workload, normalized execution
/// time per transaction kind and array size.
pub fn fig5(iters: usize) -> Vec<FigureRow> {
    let rows5 = run_fig5(&[128, 1024, 32_768], iters);
    rows5
        .into_iter()
        .map(|r| FigureRow {
            figure: "fig5",
            panel: format!("{} elements / {}", r.array_size, r.kind),
            series: r.variant,
            x: r.array_size as f64,
            y: r.normalized_time,
            hit_rate: None,
        })
        .collect()
}

/// Figure 6: skip list on the 16-way machine, 90% and 10% lookups.
pub fn fig6(opts: &FigureOpts) -> Vec<FigureRow> {
    let variants_a = [
        VariantSpec::LockFree,
        VariantSpec::ValShort,
        VariantSpec::TvarShortG,
        VariantSpec::OrecShortG,
        VariantSpec::OrecFullG,
        VariantSpec::TvarFullL,
        VariantSpec::OrecFullGFine,
    ];
    let variants_b = [
        VariantSpec::LockFree,
        VariantSpec::ValShort,
        VariantSpec::TvarShortG,
        VariantSpec::OrecShortG,
        VariantSpec::OrecFullG,
    ];
    let mut rows = Vec::new();
    sweep(
        "fig6",
        "(a) skip list, 90% lookups",
        Structure::Skip,
        90,
        &variants_a,
        opts,
        false,
        &mut rows,
    );
    sweep(
        "fig6",
        "(b) skip list, 10% lookups",
        Structure::Skip,
        10,
        &variants_b,
        opts,
        false,
        &mut rows,
    );
    rows
}

/// Figure 7: hash table on the 16-way machine, 90% and 10% lookups.
pub fn fig7(opts: &FigureOpts) -> Vec<FigureRow> {
    let variants = [
        VariantSpec::LockFree,
        VariantSpec::ValShort,
        VariantSpec::TvarShortG,
        VariantSpec::TvarShortL,
        VariantSpec::OrecShortG,
        VariantSpec::OrecFullG,
        VariantSpec::OrecFullL,
    ];
    let mut rows = Vec::new();
    for (panel, pct) in [("(a) 90% lookups", 90), ("(b) 10% lookups", 10)] {
        sweep(
            "fig7",
            &format!("hash table {panel}"),
            Structure::Hash { buckets: 16_384 },
            pct,
            &variants,
            opts,
            false,
            &mut rows,
        );
    }
    rows
}

/// Figure 8: skip list on the 128-way machine, 98%, 90% and 10% lookups.
pub fn fig8(opts: &FigureOpts) -> Vec<FigureRow> {
    let variants = [
        VariantSpec::LockFree,
        VariantSpec::ValShort,
        VariantSpec::TvarShortL,
        VariantSpec::OrecShortL,
        VariantSpec::OrecFullL,
        VariantSpec::OrecFullG,
        VariantSpec::OrecShortG,
    ];
    let mut rows = Vec::new();
    for (panel, pct) in [
        ("(a) 98% lookups", 98),
        ("(b) 90% lookups", 90),
        ("(c) 10% lookups", 10),
    ] {
        sweep(
            "fig8",
            &format!("skip list {panel}"),
            Structure::Skip,
            pct,
            &variants,
            opts,
            false,
            &mut rows,
        );
    }
    rows
}

/// Figure 9: hash table on the 128-way machine, 98%, 90% and 10% lookups.
pub fn fig9(opts: &FigureOpts) -> Vec<FigureRow> {
    let variants = [
        VariantSpec::LockFree,
        VariantSpec::ValShort,
        VariantSpec::TvarShortL,
        VariantSpec::OrecShortL,
        VariantSpec::OrecFullL,
        VariantSpec::OrecFullG,
    ];
    let mut rows = Vec::new();
    for (panel, pct) in [
        ("(a) 98% lookups", 98),
        ("(b) 90% lookups", 90),
        ("(c) 10% lookups", 10),
    ] {
        sweep(
            "fig9",
            &format!("hash table {panel}"),
            Structure::Hash { buckets: 16_384 },
            pct,
            &variants,
            opts,
            false,
            &mut rows,
        );
    }
    rows
}

/// Figure 10: hash table with short (0.5-entry) and long (32-entry) chains.
pub fn fig10(opts: &FigureOpts) -> Vec<FigureRow> {
    let variants = [
        VariantSpec::LockFree,
        VariantSpec::ValShort,
        VariantSpec::TvarShortL,
        VariantSpec::OrecShortL,
        VariantSpec::OrecFullL,
        VariantSpec::TvarFullL,
    ];
    let mut rows = Vec::new();
    sweep(
        "fig10",
        "(a) 98% lookups, 64k buckets (0.5-entry chains)",
        Structure::Hash { buckets: 65_536 },
        98,
        &variants,
        opts,
        false,
        &mut rows,
    );
    sweep(
        "fig10",
        "(b) 90% lookups, 1k buckets (32-entry chains)",
        Structure::Hash { buckets: 1_024 },
        90,
        &variants,
        opts,
        false,
        &mut rows,
    );
    rows
}

/// Parses the common command-line options of the `fig*` binaries.
pub fn opts_from_args(args: impl Iterator<Item = String>) -> FigureOpts {
    let mut opts = FigureOpts::default();
    let args: Vec<String> = args.collect();
    let mut i = 0;
    // A missing or unparsable value warns and keeps the current setting
    // (which may come from an earlier `--paper`/`--quick`) instead of
    // panicking or silently reverting to a hardcoded fallback.
    let value = |args: &[String], i: usize| args.get(i).cloned().unwrap_or_default();
    fn parse_or_warn<T: std::str::FromStr>(flag: &str, raw: &str) -> Option<T> {
        match raw.parse() {
            Ok(v) => Some(v),
            Err(_) => {
                eprintln!("warning: ignoring `{flag} {raw}`: expected a number");
                None
            }
        }
    }
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => opts = FigureOpts::quick(),
            "--paper" => opts = FigureOpts::paper(),
            "--threads" => {
                i += 1;
                let threads: Vec<usize> = value(&args, i)
                    .split(',')
                    .filter_map(|s| s.trim().parse().ok())
                    .collect();
                if threads.is_empty() {
                    eprintln!(
                        "warning: ignoring `--threads {}`: expected a comma-separated list \
                         of thread counts",
                        value(&args, i)
                    );
                } else {
                    opts.threads = threads;
                }
            }
            "--duration-ms" => {
                i += 1;
                if let Some(ms) = parse_or_warn("--duration-ms", &value(&args, i)) {
                    opts.duration = Duration::from_millis(ms);
                }
            }
            "--runs" => {
                i += 1;
                if let Some(runs) = parse_or_warn("--runs", &value(&args, i)) {
                    opts.runs = runs;
                }
            }
            "--key-range" => {
                i += 1;
                if let Some(range) = parse_or_warn("--key-range", &value(&args, i)) {
                    opts.key_range = range;
                }
            }
            other => {
                eprintln!(
                    "warning: ignoring unknown argument `{other}` (expected --quick, --paper, \
                     --threads, --duration-ms, --runs or --key-range)"
                );
            }
        }
        i += 1;
    }
    opts
}

/// Number of Figure 5 iterations corresponding to `opts`.
///
/// Figure 5 is the single-threaded synthetic benchmark: it has no threads or
/// key range, so its one size knob (iterations per data point) is derived
/// from the shared per-point duration — 800 iterations per millisecond, which
/// maps the default 250 ms to the historical 200k iterations, `--quick` to
/// 24k and `--paper` to 800k.
pub fn fig5_iters(opts: &FigureOpts) -> usize {
    (opts.duration.as_millis() as usize).max(1) * 800
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_sweep_starts_at_one() {
        let sweep = default_thread_sweep();
        assert_eq!(sweep[0], 1);
        assert!(sweep.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn opts_parse_overrides() {
        let opts = opts_from_args(
            ["--threads", "1,3,5", "--duration-ms", "10", "--runs", "2"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(opts.threads, vec![1, 3, 5]);
        assert_eq!(opts.duration, Duration::from_millis(10));
        assert_eq!(opts.runs, 2);
    }

    #[test]
    fn fig1_quick_produces_rows_for_every_series() {
        let mut opts = FigureOpts::quick();
        opts.threads = vec![1];
        opts.duration = Duration::from_millis(10);
        let rows = fig1(&opts);
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().all(|r| r.y > 0.0));
    }

    #[test]
    fn rows_render_as_tsv() {
        let row = FigureRow {
            figure: "fig1",
            panel: "p".into(),
            series: "s".into(),
            x: 1.0,
            y: 2.0,
            hit_rate: None,
        };
        assert!(row.tsv().starts_with("fig1\tp\ts\t1"));
        assert!(row.tsv().ends_with("\t-"));
    }
}
