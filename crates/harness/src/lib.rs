//! Benchmark harness for the SpecTM reproduction.
//!
//! The harness provides everything needed to regenerate the figures of the
//! paper's evaluation (Section 4):
//!
//! * [`intset`] — the multi-threaded integer-set workload (random mixes of
//!   lookups, inserts and removes over a fixed key range, the structure
//!   pre-filled to half the range), with the paper's repetition policy
//!   (mean of six runs, minimum and maximum discarded);
//! * [`adapters`] — a uniform [`BenchSet`] interface over the STM hash table
//!   and skip list (per variant and API mode), the lock-free baselines and
//!   the sequential baselines;
//! * [`variants`] — the catalogue of variant labels used in the figures and
//!   constructors that assemble the right STM + data structure + API mode
//!   for each label;
//! * [`single_thread`] — the single-threaded synthetic-array micro-benchmark
//!   of Figure 5;
//! * [`figures`] — one driver per figure, used by the `fig*` binaries and by
//!   the Criterion benches.
//!
//! Binaries: `cargo run --release -p harness --bin fig1` (likewise `fig5`
//! through `fig10`).  Each accepts `--quick` for a fast smoke run and
//! `--threads a,b,c` to override the sweep.

#![warn(missing_docs)]

pub mod adapters;
pub mod figures;
pub mod intset;
pub mod single_thread;
pub mod variants;

pub use adapters::BenchSet;
pub use intset::{run_intset, run_intset_repeated, RunResult, WorkloadConfig};
pub use variants::VariantSpec;
