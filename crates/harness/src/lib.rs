//! Benchmark harness for the SpecTM reproduction.
//!
//! The harness provides everything needed to regenerate the figures of the
//! paper's evaluation (Section 4):
//!
//! * [`intset`] — the multi-threaded integer-set workload (random mixes of
//!   lookups, inserts and removes over a fixed key range, the structure
//!   pre-filled to half the range), with the paper's repetition policy
//!   (mean of six runs, minimum and maximum discarded);
//! * [`adapters`] — a uniform [`BenchSet`] interface over the STM hash table
//!   and skip list (per variant and API mode), the lock-free baselines and
//!   the sequential baselines;
//! * [`variants`] — the catalogue of variant labels used in the figures and
//!   constructors that assemble the right STM + data structure + API mode
//!   for each label;
//! * [`single_thread`] — the single-threaded synthetic-array micro-benchmark
//!   of Figure 5;
//! * [`figures`] — one driver per figure, used by the `fig*` binaries and by
//!   the Criterion benches;
//! * [`measure`] — the shared timed-run scaffolding (per-thread measurement
//!   windows), the log-bucketed [`LatencyHistogram`] and the closed-/
//!   open-loop latency drivers;
//! * [`kv`] — the YCSB-style workload driver for the sharded transactional
//!   KV store of the `spectm-kv` crate (operation mixes, zipfian/latest key
//!   distributions, and the `kv` binary's sweep);
//! * [`loadgen`] — the network load generator for the `spectm-serve` cache
//!   server: closed- and open-loop clients over the batch wire protocol
//!   with p50/p99/p999 reporting (the `kv-loadgen` binary).
//!
//! Binaries: `cargo run --release -p harness --bin fig1` (likewise `fig5`
//! through `fig10`, `kv` for the KV-store sweeps, and `kv-loadgen` against
//! a running `spectm-serve`).  The figure binaries accept `--quick` for a
//! fast smoke run and `--threads a,b,c` to override the sweep.

#![warn(missing_docs)]

pub mod adapters;
pub mod figures;
pub mod intset;
pub mod kv;
pub mod loadgen;
pub mod measure;
pub mod single_thread;
pub mod variants;

pub use adapters::BenchSet;
pub use intset::{choose_op, run_intset, run_intset_repeated, RunResult, SetOp, WorkloadConfig};
pub use kv::{run_kv, run_kv_repeated, run_kv_variant, KvMix, KvStore, KvWorkloadConfig};
pub use loadgen::{run_loadgen, LoadMode, LoadgenConfig, LoadgenResult, WireConn};
pub use measure::LatencyHistogram;
pub use variants::VariantSpec;
