//! Uniform benchmark interface over every implementation under test.
//!
//! The paper compares STM-based, CAS-based and sequential implementations of
//! the same integer-set abstraction.  [`BenchSet`] is the minimal trait the
//! workload driver needs; adapters wrap each concrete implementation.

use std::sync::Arc;

use lockfree::{ConcurrentIntSet, SequentialIntSet};
use spectm::Stm;
use spectm_ds::{ApiMode, StmHashTable, StmSkipList};

/// A concurrent integer set as seen by the workload driver.
///
/// `ThreadCtx` carries whatever per-thread state the implementation needs
/// (an STM thread handle, an epoch handle, or nothing); it is created on the
/// worker thread itself.
pub trait BenchSet: Send + Sync + 'static {
    /// Per-worker-thread context.
    type ThreadCtx;

    /// Creates the calling thread's context.
    fn thread_ctx(&self) -> Self::ThreadCtx;
    /// Inserts `key`, returning `true` if it was not present.
    fn insert(&self, key: u64, ctx: &mut Self::ThreadCtx) -> bool;
    /// Removes `key`, returning `true` if it was present.
    fn remove(&self, key: u64, ctx: &mut Self::ThreadCtx) -> bool;
    /// Returns whether `key` is present.
    fn contains(&self, key: u64, ctx: &mut Self::ThreadCtx) -> bool;
    /// Whether the implementation is safe to drive from multiple threads.
    fn supports_concurrency(&self) -> bool {
        true
    }
}

// ---------------------------------------------------------------------------
// STM hash table / skip list
// ---------------------------------------------------------------------------

/// [`BenchSet`] adapter for [`StmHashTable`].
pub struct StmHashBench<S: Stm + Clone> {
    stm: S,
    table: StmHashTable<S>,
}

impl<S: Stm + Clone> StmHashBench<S> {
    /// Builds a table with `buckets` chains over `stm`, driven in `mode`.
    pub fn new(stm: S, buckets: usize, mode: ApiMode) -> Self {
        let table = StmHashTable::new(&stm, buckets, mode);
        Self { stm, table }
    }
}

impl<S: Stm + Clone> BenchSet for StmHashBench<S> {
    type ThreadCtx = S::Thread;

    fn thread_ctx(&self) -> Self::ThreadCtx {
        self.stm.register()
    }

    fn insert(&self, key: u64, ctx: &mut Self::ThreadCtx) -> bool {
        self.table.insert(key, ctx)
    }

    fn remove(&self, key: u64, ctx: &mut Self::ThreadCtx) -> bool {
        self.table.remove(key, ctx)
    }

    fn contains(&self, key: u64, ctx: &mut Self::ThreadCtx) -> bool {
        self.table.contains(key, ctx)
    }
}

/// [`BenchSet`] adapter for [`StmSkipList`].
pub struct StmSkipBench<S: Stm + Clone> {
    stm: S,
    list: StmSkipList<S>,
}

impl<S: Stm + Clone> StmSkipBench<S> {
    /// Builds a skip list over `stm`, driven in `mode`.
    pub fn new(stm: S, mode: ApiMode) -> Self {
        let list = StmSkipList::new(&stm, mode);
        Self { stm, list }
    }
}

impl<S: Stm + Clone> BenchSet for StmSkipBench<S> {
    type ThreadCtx = S::Thread;

    fn thread_ctx(&self) -> Self::ThreadCtx {
        self.stm.register()
    }

    fn insert(&self, key: u64, ctx: &mut Self::ThreadCtx) -> bool {
        self.list.insert(key, ctx)
    }

    fn remove(&self, key: u64, ctx: &mut Self::ThreadCtx) -> bool {
        self.list.remove(key, ctx)
    }

    fn contains(&self, key: u64, ctx: &mut Self::ThreadCtx) -> bool {
        self.list.contains(key, ctx)
    }
}

/// The STM thread handle doubles as the context; expose its statistics so the
/// driver can report abort rates.
impl<S: Stm + Clone> StmHashBench<S> {
    /// The underlying STM instance (for statistics or inspection).
    pub fn stm(&self) -> &S {
        &self.stm
    }
}

// ---------------------------------------------------------------------------
// Lock-free baselines
// ---------------------------------------------------------------------------

/// [`BenchSet`] adapter for the lock-free structures.
pub struct LockFreeBench<T: ConcurrentIntSet> {
    inner: Arc<T>,
}

impl<T: ConcurrentIntSet> LockFreeBench<T> {
    /// Wraps a lock-free integer set.
    pub fn new(inner: T) -> Self {
        Self {
            inner: Arc::new(inner),
        }
    }
}

impl<T: ConcurrentIntSet + 'static> BenchSet for LockFreeBench<T> {
    type ThreadCtx = txepoch::LocalHandle;

    fn thread_ctx(&self) -> Self::ThreadCtx {
        self.inner.collector().register()
    }

    fn insert(&self, key: u64, ctx: &mut Self::ThreadCtx) -> bool {
        self.inner.insert(key, ctx)
    }

    fn remove(&self, key: u64, ctx: &mut Self::ThreadCtx) -> bool {
        self.inner.remove(key, ctx)
    }

    fn contains(&self, key: u64, ctx: &mut Self::ThreadCtx) -> bool {
        self.inner.contains(key, ctx)
    }
}

// ---------------------------------------------------------------------------
// Sequential baseline
// ---------------------------------------------------------------------------

/// [`BenchSet`] adapter for the single-threaded baselines.
///
/// The sequential structures have no concurrency control whatsoever; the
/// driver refuses to run them with more than one thread
/// ([`BenchSet::supports_concurrency`] returns `false`).
pub struct SeqBench<T: SequentialIntSet + Send> {
    inner: std::cell::UnsafeCell<T>,
}

// SAFETY: the workload driver asserts single-threaded use before driving a
// `SeqBench` (see `supports_concurrency`), mirroring the paper's "not safe
// for multi-threaded use" sequential baseline.
unsafe impl<T: SequentialIntSet + Send> Sync for SeqBench<T> {}
// SAFETY: `T: Send` and the cell adds no thread affinity.
unsafe impl<T: SequentialIntSet + Send> Send for SeqBench<T> {}

impl<T: SequentialIntSet + Send> SeqBench<T> {
    /// Wraps a sequential integer set.
    pub fn new(inner: T) -> Self {
        Self {
            inner: std::cell::UnsafeCell::new(inner),
        }
    }

    #[expect(clippy::mut_from_ref)]
    fn inner(&self) -> &mut T {
        // SAFETY: single-threaded use is enforced by the driver.
        unsafe { &mut *self.inner.get() }
    }
}

impl<T: SequentialIntSet + Send + 'static> BenchSet for SeqBench<T> {
    type ThreadCtx = ();

    fn thread_ctx(&self) -> Self::ThreadCtx {}

    fn insert(&self, key: u64, _ctx: &mut Self::ThreadCtx) -> bool {
        self.inner().insert(key)
    }

    fn remove(&self, key: u64, _ctx: &mut Self::ThreadCtx) -> bool {
        self.inner().remove(key)
    }

    fn contains(&self, key: u64, _ctx: &mut Self::ThreadCtx) -> bool {
        self.inner().contains(key)
    }

    fn supports_concurrency(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lockfree::{LockFreeHashTable, SeqHashTable};
    use spectm::variants::ValShort;

    #[test]
    // The sequential adapter's thread context is `()`; binding it like the
    // others keeps the three adapters exercised through the same shape.
    #[allow(clippy::let_unit_value)]
    fn adapters_expose_identical_semantics() {
        let stm_set = StmHashBench::new(ValShort::new(), 64, ApiMode::Short);
        let lf_set = LockFreeBench::new(LockFreeHashTable::new(64, txepoch::Collector::new()));
        let seq_set = SeqBench::new(SeqHashTable::new(64));

        let mut a = stm_set.thread_ctx();
        let mut b = lf_set.thread_ctx();
        let mut c = seq_set.thread_ctx();
        for k in [1u64, 5, 9, 5, 1] {
            let ra = stm_set.insert(k, &mut a);
            let rb = lf_set.insert(k, &mut b);
            let rc = seq_set.insert(k, &mut c);
            assert_eq!(ra, rb);
            assert_eq!(rb, rc);
        }
        for k in 0..12u64 {
            assert_eq!(stm_set.contains(k, &mut a), lf_set.contains(k, &mut b));
            assert_eq!(lf_set.contains(k, &mut b), seq_set.contains(k, &mut c));
        }
        assert!(stm_set.supports_concurrency());
        assert!(!seq_set.supports_concurrency());
    }
}
