//! Offline shim for the parts of `criterion` this workspace uses.
//!
//! Benches written against the real criterion 0.5 API (`Criterion`,
//! `benchmark_group`, `sample_size` / `warm_up_time` / `measurement_time`,
//! `bench_function`, `Bencher::iter`, `criterion_group!`, `criterion_main!`)
//! compile and run unchanged.  Each benchmark is warmed up for the group's
//! warm-up time, then measured for the group's measurement time split across
//! the configured samples; the mean ns/iter is printed to stdout.  There are
//! no statistics, plots, CLI filters or saved baselines.  See
//! `vendor/README.md` for swap-back instructions.

use std::time::{Duration, Instant};

pub mod measurement {
    //! Measurement marker types (shim for `criterion::measurement`).

    /// Wall-clock time measurement — the only measurement the shim supports.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct WallTime;
}

/// Prevents the optimizer from discarding a value (shim for
/// `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Entry point handed to each benchmark target (shim for
/// `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(400),
            throughput: None,
            _criterion: self,
            _measurement: measurement::WallTime,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut group = self.benchmark_group(id.clone());
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// A group of benchmarks sharing timing configuration (shim for
/// `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a, M> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
    _measurement: M,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Sets the number of samples taken per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets how long each benchmark warms up before measurement.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Sets the total measurement time per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Sets the per-iteration throughput annotation: each benchmark in the
    /// group additionally reports elements/s or bytes/s (as MB/s) derived
    /// from its mean iteration time.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group and prints its mean time per
    /// iteration.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            mode: Mode::WarmUp {
                until: Instant::now() + self.warm_up_time,
            },
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_sample = self.measurement_time / self.sample_size as u32;
        bencher.mode = Mode::Measure { per_sample };
        bencher.iters = 0;
        bencher.elapsed = Duration::ZERO;
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        let mean_ns = if bencher.iters == 0 {
            0.0
        } else {
            bencher.elapsed.as_nanos() as f64 / bencher.iters as f64
        };
        let rates = match (self.throughput, mean_ns > 0.0) {
            (Some(Throughput::Bytes(bytes)), true) => {
                let ops_per_s = 1.0e9 / mean_ns;
                let mb_per_s = bytes as f64 * ops_per_s / 1.0e6;
                format!(", {:.2} Mops/s, {mb_per_s:.1} MB/s", ops_per_s / 1.0e6)
            }
            (Some(Throughput::Elements(elems)), true) => {
                let elems_per_s = elems as f64 * 1.0e9 / mean_ns;
                format!(", {:.2} Melem/s", elems_per_s / 1.0e6)
            }
            _ => String::new(),
        };
        println!(
            "{}/{id}: {mean_ns:.1} ns/iter ({} iters{rates})",
            self.name, bencher.iters
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

#[derive(Debug, Clone, Copy)]
enum Mode {
    WarmUp { until: Instant },
    Measure { per_sample: Duration },
}

/// Throughput annotation (shim for `criterion::Throughput`); accepted and
/// ignored.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handle passed to each benchmark closure (shim for
/// `criterion::Bencher`).
#[derive(Debug)]
pub struct Bencher {
    mode: Mode,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly for the configured slice of time,
    /// accumulating iteration counts and elapsed wall-clock time.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        match self.mode {
            Mode::WarmUp { until } => {
                while Instant::now() < until {
                    std::hint::black_box(routine());
                }
            }
            Mode::Measure { per_sample } => {
                // Run geometrically growing batches between clock reads so
                // the `Instant::now` cost is amortized away even for
                // nanosecond-scale routines (a per-iteration clock read
                // would dominate the very costs these benches measure).
                let start = Instant::now();
                let mut iters = 0u64;
                let mut batch = 1u64;
                loop {
                    for _ in 0..batch {
                        std::hint::black_box(routine());
                    }
                    iters += batch;
                    let elapsed = start.elapsed();
                    if elapsed >= per_sample {
                        self.iters += iters;
                        self.elapsed += elapsed;
                        break;
                    }
                    if batch < 1 << 20 {
                        batch *= 2;
                    }
                }
            }
        }
    }
}

/// Declares a group of benchmark targets (shim for
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let _ = $config;
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main` (shim for
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
