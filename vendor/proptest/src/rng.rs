//! Deterministic random number generation for the proptest shim.

/// A small splitmix64-based RNG, seeded from the property's name so every
/// `cargo test` run generates the same cases (the workspace's "fast and
/// deterministic tests" requirement).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG seeded by hashing `name` (FNV-1a).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h | 1 }
    }

    /// Next 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift bounded sampling; bias is negligible for test use.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}
