//! Shim for `proptest::collection`: the `vec` strategy.

use std::ops::Range;

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// Strategy for `Vec`s with lengths drawn from a range (shim for
/// `proptest::collection::vec`).
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

/// Strategy returned by [`vec`](fn@vec).
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
