//! The `Strategy` trait and the strategy shapes the workspace uses:
//! integer ranges, tuples, and `prop_map` adapters.

use std::ops::Range;

use crate::rng::TestRng;

/// Shim for `proptest::strategy::Strategy`: a recipe for generating values.
///
/// Unlike the real trait there is no value tree / shrinking; `generate`
/// produces a final value directly.
pub trait Strategy {
    /// The type of values this strategy generates.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (shim for `prop_map`).
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(
                        self.start < self.end,
                        "empty range strategy {:?}",
                        self
                    );
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $ty)
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($ty:ty => $uty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(
                        self.start < self.end,
                        "empty range strategy {:?}",
                        self
                    );
                    let span = (self.end as $uty).wrapping_sub(self.start as $uty);
                    self.start.wrapping_add(rng.below(span as u64) as $ty)
                }
            }
        )*
    };
}

signed_range_strategy!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
