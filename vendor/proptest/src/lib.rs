//! Offline shim for the parts of `proptest` this workspace uses.
//!
//! Provides the [`proptest!`] macro, the [`Strategy`](strategy::Strategy)
//! trait with `prop_map`, integer-range and tuple strategies,
//! [`collection::vec`], [`ProptestConfig`](test_runner::Config) and the
//! `prop_assert*` macros.  Differences from the real crate:
//!
//! * value generation is random but **deterministically seeded** from the
//!   test name, so runs are reproducible;
//! * there is **no shrinking** — a failing case panics with the generated
//!   values printed by the assertion itself;
//! * `prop_assert!`/`prop_assert_eq!` are plain `assert!`/`assert_eq!`.
//!
//! See `vendor/README.md` for swap-back instructions.

pub mod collection;
pub mod rng;
pub mod strategy;
pub mod test_runner;

/// Everything the `proptest::prelude::*` glob import is expected to bring in.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Builds the deterministic RNG for one property, seeded from its name.
pub fn rng_for(test_name: &str) -> rng::TestRng {
    rng::TestRng::from_name(test_name)
}

/// Shim for `proptest::prop_assert!`: panics (no shrinking) instead of
/// returning a `TestCaseError`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Shim for `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Shim for `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Shim for the `proptest!` macro: runs each property `config.cases` times
/// with freshly generated inputs.  Supports the inner
/// `#![proptest_config(..)]` attribute and one or more `pat in strategy`
/// parameters per property.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat_param in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut __proptest_rng = $crate::rng_for(stringify!($name));
                for __proptest_case in 0..config.cases {
                    let _ = __proptest_case;
                    $(
                        let $pat = $crate::strategy::Strategy::generate(
                            &$strategy,
                            &mut __proptest_rng,
                        );
                    )+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $($rest)*
        }
    };
}
