//! Shim for `proptest::test_runner`: the run configuration.

/// Shim for `proptest::test_runner::Config` (exported from the prelude as
/// `ProptestConfig`).  Only `cases` is honoured; the other fields exist so
/// `..ProptestConfig::default()` struct updates keep compiling if callers
/// set them.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of cases to generate and run per property.
    pub cases: u32,
    /// Accepted for compatibility; the shim never rejects cases.
    pub max_global_rejects: u32,
    /// Accepted for compatibility; the shim does not shrink.
    pub max_shrink_iters: u32,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            // The real default is 256; the shim trims it to keep `cargo
            // test -q` for the whole workspace inside a few seconds.
            cases: 64,
            max_global_rejects: 1024,
            max_shrink_iters: 0,
        }
    }
}
