//! Offline shim for the parts of `serde` this workspace uses.
//!
//! The workspace only *derives* [`Serialize`] on plain result-row types so a
//! future exporter can serialize them; nothing serializes values yet.  The
//! shim therefore reduces `Serialize` to a marker trait and the derive macro
//! to an empty implementation.  See `vendor/README.md` for the swap-back
//! instructions once real crates.io access exists.

/// Marker stand-in for `serde::Serialize`.
///
/// The real trait's `serialize` method is intentionally omitted: no code in
/// the workspace calls it, and omitting it keeps the derive trivial.
pub trait Serialize {}

pub use serde_derive_shim::Serialize;
