//! `#[derive(Serialize)]` for the offline serde shim.
//!
//! Emits `impl serde::Serialize for <Type> {}` for the (non-generic) derive
//! targets used in this workspace.  Types with generic parameters are not
//! supported — the real `serde_derive` should be restored before any appear.

use proc_macro::{TokenStream, TokenTree};

/// Derives the shim's marker `Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut tokens = input.into_iter();
    // Skip attributes and visibility until the `struct`/`enum` keyword, then
    // take the following identifier as the type name.
    let mut name = None;
    while let Some(tok) = tokens.next() {
        if let TokenTree::Ident(ident) = &tok {
            let s = ident.to_string();
            if s == "struct" || s == "enum" {
                if let Some(TokenTree::Ident(type_name)) = tokens.next() {
                    name = Some(type_name.to_string());
                }
                break;
            }
        }
    }
    let name = name.expect("serde shim derive: could not find type name");
    if matches!(tokens.next(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive does not support generic types (see vendor/README.md)");
    }
    format!("impl serde::Serialize for {name} {{}}")
        .parse()
        .expect("serde shim derive: generated impl failed to parse")
}
