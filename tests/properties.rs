//! Property-based tests over the core data structures and the STM itself.

use proptest::prelude::*;

use lockfree::{SeqHashTable, SeqSkipList, SequentialIntSet};
use spectm::variants::{TvarStm, ValShort};
use spectm::{decode_int, encode_int, mark, unmark, Config, Stm};
use spectm_ds::{ApiMode, StmHashTable, StmSkipList, TxDeque};

/// A single step of the integer-set workload.
#[derive(Debug, Clone, Copy)]
enum SetOp {
    Insert(u64),
    Remove(u64),
    Contains(u64),
}

fn set_op_strategy(key_range: u64) -> impl Strategy<Value = SetOp> {
    (0u8..3, 1..key_range).prop_map(|(kind, key)| match kind {
        0 => SetOp::Insert(key),
        1 => SetOp::Remove(key),
        _ => SetOp::Contains(key),
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Word-encoding helpers round-trip and preserve the val-layout lock bit.
    #[test]
    fn word_encoding_roundtrips(v in 0usize..(1 << 50)) {
        prop_assert_eq!(decode_int(encode_int(v)), v);
        prop_assert_eq!(encode_int(v) & 1, 0);
        let p = v << 3; // an "aligned pointer"
        prop_assert_eq!(unmark(mark(p)), p);
    }

    /// The STM hash table behaves exactly like the sequential oracle for any
    /// operation sequence, on both a versioned layout and the val layout.
    #[test]
    fn stm_hash_table_matches_oracle(ops in proptest::collection::vec(set_op_strategy(96), 1..400)) {
        let stm = ValShort::new();
        let table = StmHashTable::new(&stm, 16, ApiMode::Short);
        let stm2 = TvarStm::with_config(Config::global());
        let table2 = StmHashTable::new(&stm2, 16, ApiMode::Full);
        let mut oracle = SeqHashTable::new(16);
        let mut t = stm.register();
        let mut t2 = stm2.register();
        for op in ops {
            match op {
                SetOp::Insert(k) => {
                    let expect = oracle.insert(k);
                    prop_assert_eq!(table.insert(k, &mut t), expect);
                    prop_assert_eq!(table2.insert(k, &mut t2), expect);
                }
                SetOp::Remove(k) => {
                    let expect = oracle.remove(k);
                    prop_assert_eq!(table.remove(k, &mut t), expect);
                    prop_assert_eq!(table2.remove(k, &mut t2), expect);
                }
                SetOp::Contains(k) => {
                    let expect = oracle.contains(k);
                    prop_assert_eq!(table.contains(k, &mut t), expect);
                    prop_assert_eq!(table2.contains(k, &mut t2), expect);
                }
            }
        }
        prop_assert_eq!(table.quiescent_snapshot().len(), oracle.len());
    }

    /// The STM skip list likewise matches the oracle and stays sorted.
    #[test]
    fn stm_skip_list_matches_oracle(ops in proptest::collection::vec(set_op_strategy(96), 1..300)) {
        let stm = ValShort::new();
        let list = StmSkipList::new(&stm, ApiMode::Short);
        let mut oracle = SeqSkipList::new();
        let mut t = stm.register();
        for op in ops {
            match op {
                SetOp::Insert(k) => prop_assert_eq!(list.insert(k, &mut t), oracle.insert(k)),
                SetOp::Remove(k) => prop_assert_eq!(list.remove(k, &mut t), oracle.remove(k)),
                SetOp::Contains(k) => prop_assert_eq!(list.contains(k, &mut t), oracle.contains(k)),
            }
        }
        let snap = list.quiescent_snapshot();
        prop_assert!(snap.windows(2).all(|w| w[0] < w[1]));
        prop_assert_eq!(snap.len(), oracle.len());
    }

    /// The transactional deque behaves like `VecDeque` for any sequence of
    /// pushes and pops at either end (within capacity).
    #[test]
    fn deque_matches_vecdeque(ops in proptest::collection::vec((0u8..4, 1u64..1000), 1..200)) {
        let stm = ValShort::new();
        let deque = TxDeque::new(&stm, 64);
        let mut oracle: std::collections::VecDeque<u64> = std::collections::VecDeque::new();
        let mut t = stm.register();
        for (kind, value) in ops {
            match kind {
                0 => {
                    if oracle.len() < 63 {
                        prop_assert!(deque.push_right(value, &mut t));
                        oracle.push_back(value);
                    }
                }
                1 => {
                    prop_assert_eq!(deque.pop_left(&mut t), oracle.pop_front());
                }
                2 => {
                    if oracle.len() < 63 {
                        // push_left may legitimately report "full" when the
                        // left index is at its initial position.
                        if deque.push_left(value, &mut t) {
                            oracle.push_front(value);
                        }
                    }
                }
                _ => {
                    prop_assert_eq!(deque.pop_right(&mut t), oracle.pop_back());
                }
            }
        }
        prop_assert_eq!(deque.quiescent_len(), oracle.len());
    }

    /// Transactional counters never lose updates regardless of the mix of
    /// full, short and single-operation increments.
    #[test]
    fn counter_increments_are_exact(kinds in proptest::collection::vec(0u8..3, 1..200)) {
        use spectm::StmThread;
        let stm = ValShort::new();
        let cell = stm.new_cell(encode_int(0));
        let mut t = stm.register();
        for kind in &kinds {
            match kind {
                0 => {
                    t.atomic(|tx| {
                        let v = decode_int(tx.read(&cell)?);
                        tx.write(&cell, encode_int(v + 1))?;
                        Ok(())
                    });
                }
                1 => loop {
                    let v = t.rw_read(0, &cell);
                    if !t.rw_is_valid(1) {
                        continue;
                    }
                    if t.rw_commit(1, &[encode_int(decode_int(v) + 1)]) {
                        break;
                    }
                },
                _ => loop {
                    let v = t.single_read(&cell);
                    if t.single_cas(&cell, v, encode_int(decode_int(v) + 1)) == v {
                        break;
                    }
                },
            }
        }
        prop_assert_eq!(decode_int(ValShort::peek(&cell)), kinds.len());
    }
}
