//! Cross-crate integration tests: every STM variant drives every data
//! structure through the same scenarios, and results are checked against the
//! sequential baselines from the `lockfree` crate.

use std::sync::Arc;

use lockfree::{SeqHashTable, SeqSkipList, SequentialIntSet};
use spectm::variants::{OrecStm, TvarStm, ValShort};
use spectm::{Config, Stm};
use spectm_ds::{ApiMode, StmHashTable, StmSkipList, TxDeque};

fn mixed_ops<S: Stm + Clone>(stm: S, mode: ApiMode, seed: u64) {
    let table = StmHashTable::new(&stm, 64, mode);
    let list = StmSkipList::new(&stm, mode);
    let mut oracle_table = SeqHashTable::new(64);
    let mut oracle_list = SeqSkipList::new();
    let mut thread = stm.register();

    let mut state = seed | 1;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..1_500 {
        let k = rng() % 128 + 1;
        match rng() % 3 {
            0 => {
                assert_eq!(table.insert(k, &mut thread), oracle_table.insert(k));
                assert_eq!(list.insert(k, &mut thread), oracle_list.insert(k));
            }
            1 => {
                assert_eq!(table.remove(k, &mut thread), oracle_table.remove(k));
                assert_eq!(list.remove(k, &mut thread), oracle_list.remove(k));
            }
            _ => {
                assert_eq!(table.contains(k, &mut thread), oracle_table.contains(k));
                assert_eq!(list.contains(k, &mut thread), oracle_list.contains(k));
            }
        }
    }
    assert_eq!(table.quiescent_snapshot().len(), oracle_table.len());
    assert_eq!(list.quiescent_snapshot().len(), oracle_list.len());
}

#[test]
fn every_layout_and_mode_matches_the_sequential_oracle() {
    mixed_ops(OrecStm::with_config(Config::global()), ApiMode::Full, 11);
    mixed_ops(OrecStm::with_config(Config::local()), ApiMode::Full, 12);
    mixed_ops(OrecStm::with_config(Config::global()), ApiMode::Short, 13);
    mixed_ops(OrecStm::with_config(Config::local()), ApiMode::Short, 14);
    mixed_ops(OrecStm::with_config(Config::global()), ApiMode::Fine, 15);
    mixed_ops(TvarStm::with_config(Config::global()), ApiMode::Full, 16);
    mixed_ops(TvarStm::with_config(Config::local()), ApiMode::Short, 17);
    mixed_ops(TvarStm::with_config(Config::global()), ApiMode::Short, 18);
    mixed_ops(ValShort::new(), ApiMode::Full, 19);
    mixed_ops(ValShort::new(), ApiMode::Short, 20);
    mixed_ops(ValShort::new(), ApiMode::Fine, 21);
}

#[test]
fn deque_and_sets_share_one_stm_instance() {
    // All data structures of one program can share a single STM instance and
    // a single per-thread handle, as in the paper's implementation.
    let stm = ValShort::new();
    let table = StmHashTable::new(&stm, 32, ApiMode::Short);
    let deque = TxDeque::new(&stm, 16);
    let mut thread = stm.register();

    for k in 0..10u64 {
        assert!(table.insert(k, &mut thread));
        assert!(deque.push_right(k, &mut thread));
    }
    for k in 0..10u64 {
        assert!(table.contains(k, &mut thread));
        assert_eq!(deque.pop_left(&mut thread), Some(k));
    }
}

#[test]
fn concurrent_mixed_structures_stay_consistent() {
    // Threads move keys between a hash table and a skip list; a key must
    // never be lost (it is in exactly one structure at quiescence).
    let stm = Arc::new(TvarStm::with_config(Config::global()));
    let table = Arc::new(StmHashTable::new(&*stm, 128, ApiMode::Short));
    let list = Arc::new(StmSkipList::new(&*stm, ApiMode::Short));

    const KEYS: u64 = 256;
    {
        let mut t = stm.register();
        for k in 1..=KEYS {
            assert!(table.insert(k, &mut t));
        }
    }

    let mut joins = Vec::new();
    for tid in 0..4u64 {
        let stm = Arc::clone(&stm);
        let table = Arc::clone(&table);
        let list = Arc::clone(&list);
        joins.push(std::thread::spawn(move || {
            let mut t = stm.register();
            let mut state = tid * 97 + 3;
            for _ in 0..2_000 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let k = state % KEYS + 1;
                // Try to move the key from the table to the list, or back.
                if table.remove(k, &mut t) {
                    assert!(list.insert(k, &mut t), "key {k} duplicated in list");
                } else if list.remove(k, &mut t) {
                    assert!(table.insert(k, &mut t), "key {k} duplicated in table");
                }
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }

    let in_table = table.quiescent_snapshot();
    let in_list = list.quiescent_snapshot();
    assert_eq!(
        in_table.len() + in_list.len(),
        KEYS as usize,
        "every key lives in exactly one structure"
    );
    for k in 1..=KEYS {
        let t = in_table.binary_search(&k).is_ok();
        let l = in_list.binary_search(&k).is_ok();
        assert!(t ^ l, "key {k} must be in exactly one structure");
    }
}

#[test]
fn stats_reflect_api_usage() {
    use spectm::StmThread;
    let stm = ValShort::new();
    let table = StmHashTable::new(&stm, 32, ApiMode::Short);
    let mut thread = stm.register();
    for k in 0..50u64 {
        table.insert(k, &mut thread);
    }
    let stats = thread.stats();
    assert!(stats.singles > 0, "short mode uses single-location CASes");
    assert_eq!(stats.full_aborts, 0, "uncontended run should not abort");
}
