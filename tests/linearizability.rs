//! Concurrency-focused integration tests: atomicity and isolation of the
//! SpecTM primitives observed from multiple threads.

use std::sync::Arc;

use spectm::variants::{OrecStm, TvarStm, ValShort};
use spectm::{decode_int, encode_int, Config, Stm, StmThread};

/// A bank of accounts with a conserved total, updated through every API level
/// at once.  Any torn or lost update changes the total.
fn conserved_transfers<S: Stm + Clone>(stm: S, encode: bool) {
    const ACCOUNTS: usize = 16;
    const PER_ACCOUNT: usize = 1_000;
    const THREADS: usize = 4;
    const OPS: usize = 1_500;

    let enc = move |v: usize| if encode { encode_int(v) } else { v };
    let dec = move |v: usize| if encode { decode_int(v) } else { v };

    let stm = Arc::new(stm);
    let accounts: Arc<Vec<S::Cell>> = Arc::new(
        (0..ACCOUNTS)
            .map(|_| stm.new_cell(enc(PER_ACCOUNT)))
            .collect(),
    );

    let mut joins = Vec::new();
    for tid in 0..THREADS {
        let stm = Arc::clone(&stm);
        let accounts = Arc::clone(&accounts);
        joins.push(std::thread::spawn(move || {
            let mut t = stm.register();
            let mut state = tid as u64 * 77 + 13;
            let mut rng = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            for _ in 0..OPS {
                let from = (rng() as usize) % ACCOUNTS;
                let to = (rng() as usize) % ACCOUNTS;
                if from == to {
                    continue;
                }
                let amount = (rng() as usize) % 5;
                if rng() % 2 == 0 {
                    // Full transaction.
                    t.atomic(|tx| {
                        let f = dec(tx.read(&accounts[from])?);
                        let s = dec(tx.read(&accounts[to])?);
                        if f >= amount {
                            tx.write(&accounts[from], enc(f - amount))?;
                            tx.write(&accounts[to], enc(s + amount))?;
                        }
                        Ok(())
                    });
                } else {
                    // Short read-write transaction.
                    loop {
                        let f = t.rw_read(0, &accounts[from]);
                        let s = t.rw_read(1, &accounts[to]);
                        if !t.rw_is_valid(2) {
                            continue;
                        }
                        let (f, s) = (dec(f), dec(s));
                        let (nf, ns) = if f >= amount {
                            (f - amount, s + amount)
                        } else {
                            (f, s)
                        };
                        if t.rw_commit(2, &[enc(nf), enc(ns)]) {
                            break;
                        }
                    }
                }
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }

    let total: usize = accounts.iter().map(|c| dec(S::peek(c))).sum();
    assert_eq!(total, ACCOUNTS * PER_ACCOUNT, "money must be conserved");
}

#[test]
fn transfers_conserve_total_val() {
    conserved_transfers(ValShort::new(), true);
}

#[test]
fn transfers_conserve_total_tvar_global() {
    conserved_transfers(TvarStm::with_config(Config::global()), false);
}

#[test]
fn transfers_conserve_total_orec_local() {
    conserved_transfers(OrecStm::with_config(Config::local()), false);
}

/// Readers running full read-only transactions must always observe the
/// invariant (opacity): the sum of the two cells never appears torn.
fn opacity_under_writers<S: Stm + Clone>(stm: S, encode: bool) {
    let enc = move |v: usize| if encode { encode_int(v) } else { v };
    let dec = move |v: usize| if encode { decode_int(v) } else { v };

    let stm = Arc::new(stm);
    let a = Arc::new(stm.new_cell(enc(512)));
    let b = Arc::new(stm.new_cell(enc(512)));
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

    let writer = {
        let stm = Arc::clone(&stm);
        let a = Arc::clone(&a);
        let b = Arc::clone(&b);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut t = stm.register();
            let mut i = 0usize;
            // ORDERING: best-effort stop flag; no data is transferred.
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                i += 1;
                t.atomic(|tx| {
                    let va = dec(tx.read(&a)?);
                    let vb = dec(tx.read(&b)?);
                    let delta = (i % 7).min(va);
                    tx.write(&a, enc(va - delta))?;
                    tx.write(&b, enc(vb + delta))?;
                    Ok(())
                });
            }
        })
    };

    let mut reader = stm.register();
    for _ in 0..4_000 {
        let sum = reader
            .atomic(|tx| {
                let va = dec(tx.read(&a)?);
                let vb = dec(tx.read(&b)?);
                Ok(va + vb)
            })
            .unwrap();
        assert_eq!(sum, 1024, "read-only transaction observed a torn state");
    }
    // ORDERING: best-effort stop flag; the join below synchronizes.
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    writer.join().unwrap();
}

#[test]
fn opacity_holds_for_all_layouts() {
    opacity_under_writers(OrecStm::with_config(Config::global()), false);
    opacity_under_writers(OrecStm::with_config(Config::local()), false);
    opacity_under_writers(TvarStm::with_config(Config::global()), false);
    opacity_under_writers(ValShort::new(), true);
}

/// Short read-only transactions validated by value must also see consistent
/// pairs when writers always update both locations (special case 1 + 2 of
/// Section 2.4).
#[test]
fn short_ro_snapshot_is_consistent_val() {
    let stm = Arc::new(ValShort::new());
    let a = Arc::new(stm.new_cell(encode_int(100)));
    let b = Arc::new(stm.new_cell(encode_int(100)));
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

    let writer = {
        let stm = Arc::clone(&stm);
        let a = Arc::clone(&a);
        let b = Arc::clone(&b);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut t = stm.register();
            let mut i = 0usize;
            // ORDERING: best-effort stop flag; no data is transferred.
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                i = i.wrapping_add(1);
                loop {
                    let va = t.rw_read(0, &a);
                    let vb = t.rw_read(1, &b);
                    if !t.rw_is_valid(2) {
                        continue;
                    }
                    // Keep the sum constant at 200, sliding value from b to a
                    // and resetting when b runs out.
                    let (na, nb) = if decode_int(vb) == 0 {
                        (100, 100)
                    } else {
                        (decode_int(va) + 1, decode_int(vb) - 1)
                    };
                    if t.rw_commit(2, &[encode_int(na), encode_int(nb)]) {
                        break;
                    }
                }
            }
        })
    };

    let mut reader = stm.register();
    for _ in 0..6_000 {
        let va = reader.ro_read(0, &a);
        let vb = reader.ro_read(1, &b);
        if reader.ro_is_valid(2) {
            assert_eq!(
                decode_int(va) + decode_int(vb),
                200,
                "validated short RO snapshot must be consistent"
            );
        }
    }
    // ORDERING: best-effort stop flag; the join below synchronizes.
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    writer.join().unwrap();
}
