//! Umbrella crate re-exporting the SpecTM reproduction workspace.
#![warn(missing_docs)]

pub use harness;
pub use lockfree;
pub use spectm;
pub use spectm_ds;
pub use spectm_kv;
pub use txepoch;
