//! The batched KV API end to end: build a reusable [`BatchRequest`], execute
//! it against a sharded store, and read the per-operation results back in
//! request order — then a quick self-timed comparison of per-op dispatch
//! against batched dispatch on the same workload.
//!
//! ```sh
//! cargo run --release --example kv_batch
//! ```

use spectm::variants::ValShort;
use spectm::Stm;
use spectm_ds::ApiMode;
use spectm_kv::{BatchRequest, BatchResponse, ShardedKv, Value};
use std::time::Instant;

fn main() {
    let stm = ValShort::new();
    let store = ShardedKv::new(&stm, 8, 1024, ApiMode::Short);
    let mut thread = store.register();

    // Mixed batch: results land at their request positions, and a get
    // observes the batch's own earlier put of the same key.
    let mut req = BatchRequest::new();
    let mut resp = BatchResponse::new();
    req.put(1, b"one").put(2, b"two").get(1).del(2).get(2);
    store
        .execute_batch_into(&mut req, &mut resp, &mut thread)
        .expect("values are small");
    assert_eq!(
        resp,
        vec![
            None,
            None,
            Some(Value::new(b"one")),
            Some(Value::new(b"two")),
            None,
        ],
    );
    println!(
        "mixed batch of {} ops -> {} results, in request order",
        req.len(),
        resp.len()
    );

    // Amortization sketch: the same read-heavy stream, per-op vs batched.
    const KEYS: u64 = 16_384;
    const OPS: u64 = 1 << 20;
    for key in 0..KEYS {
        store.put(key, &key.to_le_bytes(), &mut thread).unwrap();
    }
    let mut state = 0x5EEDu64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };

    let start = Instant::now();
    let mut acc = 0u64;
    for _ in 0..OPS {
        if let Some(v) = store.get(next() % KEYS, &mut thread) {
            acc ^= v.as_u64();
        }
    }
    let per_op = start.elapsed().as_nanos() as f64 / OPS as f64;
    println!("per-op gets:      {per_op:6.1} ns/op (checksum {acc})");

    let start = Instant::now();
    let mut acc = 0u64;
    for _ in 0..OPS / 128 {
        req.clear();
        for _ in 0..128 {
            req.get(next() % KEYS);
        }
        store
            .execute_batch_into(&mut req, &mut resp, &mut thread)
            .expect("gets cannot be oversized");
        for v in resp.iter().flatten() {
            acc ^= v.as_u64();
        }
    }
    let batched = start.elapsed().as_nanos() as f64 / OPS as f64;
    println!("batch-128 gets:   {batched:6.1} ns/op (checksum {acc})");
}
