//! A tiny concurrent key-value membership store backed by the STM hash
//! table — the kind of key-value store index the paper's introduction
//! motivates.
//!
//! Several worker threads apply a random stream of put/delete/get requests
//! over the `val-short` variant while a reader thread continuously checks a
//! few invariant keys.  At the end the store is compared against a
//! sequentially-replayed oracle.
//!
//! Run with: `cargo run --release --example kv_store`

use std::collections::BTreeSet;
use std::sync::Arc;

use spectm::variants::ValShort;
use spectm::Stm;
use spectm_ds::{ApiMode, StmHashTable};

const WORKERS: usize = 4;
const OPS_PER_WORKER: usize = 20_000;
const KEY_SPACE: u64 = 4_096;

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

fn main() {
    let stm = Arc::new(ValShort::new());
    let store = Arc::new(StmHashTable::new(&*stm, 1_024, ApiMode::Short));

    // "Pinned" keys that are inserted up front and never deleted.
    let mut setup_thread = stm.register();
    for k in 0..16u64 {
        store.insert(KEY_SPACE + k, &mut setup_thread);
    }

    let mut handles = Vec::new();
    for w in 0..WORKERS {
        let stm = Arc::clone(&stm);
        let store = Arc::clone(&store);
        handles.push(std::thread::spawn(move || {
            let mut thread = stm.register();
            let mut state = (w as u64 + 1) * 0x9E37_79B9;
            // Record this worker's successful updates so the main thread can
            // rebuild an oracle.
            let mut journal: Vec<(u64, bool)> = Vec::new();
            for _ in 0..OPS_PER_WORKER {
                let key = xorshift(&mut state) % KEY_SPACE;
                match xorshift(&mut state) % 10 {
                    0..=4 => {
                        // get
                        std::hint::black_box(store.contains(key, &mut thread));
                    }
                    5..=7 => {
                        if store.insert(key, &mut thread) {
                            journal.push((key, true));
                        }
                    }
                    _ => {
                        if store.remove(key, &mut thread) {
                            journal.push((key, false));
                        }
                    }
                }
            }
            journal
        }));
    }

    // A reader thread hammering the pinned keys: they must always be present.
    let reader = {
        let stm = Arc::clone(&stm);
        let store = Arc::clone(&store);
        std::thread::spawn(move || {
            let mut thread = stm.register();
            for _ in 0..100_000 {
                for k in 0..16u64 {
                    assert!(
                        store.contains(KEY_SPACE + k, &mut thread),
                        "pinned key vanished"
                    );
                }
            }
        })
    };

    let journals: Vec<Vec<(u64, bool)>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    reader.join().unwrap();

    // Sanity check: per-key, the number of successful inserts and removes can
    // differ by at most one, and the key is present iff inserts > removes.
    let mut thread = stm.register();
    let mut balance = vec![0i64; KEY_SPACE as usize];
    for journal in &journals {
        for &(key, inserted) in journal {
            balance[key as usize] += if inserted { 1 } else { -1 };
        }
    }
    let mut oracle = BTreeSet::new();
    for (key, bal) in balance.iter().enumerate() {
        assert!((0..=1).contains(bal), "key {key} balance {bal}");
        if *bal == 1 {
            oracle.insert(key as u64);
        }
        assert_eq!(
            store.contains(key as u64, &mut thread),
            *bal == 1,
            "key {key} presence mismatch"
        );
    }
    println!(
        "kv store verified: {} live keys after {} operations across {WORKERS} workers",
        oracle.len(),
        WORKERS * OPS_PER_WORKER
    );
}
