//! Building a multi-word primitive from short transactions: the paper's
//! double-compare-single-swap (DCSS), used here to implement a tiny
//! "leader election with fencing token" pattern.
//!
//! A leader slot may only be claimed (`leader := me`) while the fencing epoch
//! still holds the value the candidate observed — the classic use of DCSS.
//!
//! Run with: `cargo run --release --example dcss`

use std::sync::Arc;

use spectm::variants::ValShort;
use spectm::{decode_int, encode_int, Stm, StmThread};
use spectm_ds::dcss;

const CANDIDATES: usize = 8;
const ROUNDS: usize = 200;

fn main() {
    let stm = Arc::new(ValShort::new());
    // leader = 0 means "vacant"; otherwise it holds the winner's id.
    let leader = Arc::new(stm.new_cell(encode_int(0)));
    let epoch = Arc::new(stm.new_cell(encode_int(1)));

    let mut handles = Vec::new();
    for id in 1..=CANDIDATES {
        let stm = Arc::clone(&stm);
        let leader = Arc::clone(&leader);
        let epoch = Arc::clone(&epoch);
        handles.push(std::thread::spawn(move || {
            let mut thread = stm.register();
            let mut wins = 0u32;
            for _ in 0..ROUNDS {
                let current_epoch = thread.single_read(&epoch);
                // Claim the leadership only if it is vacant AND the epoch has
                // not advanced since we sampled it.
                if dcss::<ValShort>(
                    &leader,
                    &epoch,
                    encode_int(0),
                    current_epoch,
                    encode_int(id),
                    &mut thread,
                ) {
                    wins += 1;
                    // Do "leader work", then step down and advance the epoch
                    // atomically with a short read-write transaction.
                    loop {
                        let l = thread.rw_read(0, &leader);
                        let e = thread.rw_read(1, &epoch);
                        if !thread.rw_is_valid(2) {
                            continue;
                        }
                        assert_eq!(decode_int(l), id, "only the leader steps down");
                        let next_epoch = encode_int(decode_int(e) + 1);
                        if thread.rw_commit(2, &[encode_int(0), next_epoch]) {
                            break;
                        }
                    }
                } else {
                    std::thread::yield_now();
                }
            }
            wins
        }));
    }

    let wins: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let total: u32 = wins.iter().sum();
    let mut thread = stm.register();
    let final_epoch = decode_int(thread.single_read(&epoch));
    println!("leadership handovers per candidate: {wins:?}");
    println!("total handovers: {total}, final epoch: {final_epoch}");
    assert_eq!(
        final_epoch as u32,
        total + 1,
        "each successful claim advances the epoch exactly once"
    );
    assert_eq!(
        decode_int(thread.single_read(&leader)),
        0,
        "leadership is vacant at the end"
    );
    println!("ok: DCSS-based leader election behaved atomically");
}
