//! A multi-producer / multi-consumer work queue built on the paper's
//! double-ended queue (Section 2), running over the TVar layout.
//!
//! Producers push "jobs" on the right with short transactions; consumers pop
//! from the left.  The example checks at the end that every job was processed
//! exactly once.
//!
//! Run with: `cargo run --release --example concurrent_deque`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use spectm::variants::TvarShortG;
use spectm::Stm;
use spectm_ds::TxDeque;

const PRODUCERS: usize = 2;
const CONSUMERS: usize = 2;
const JOBS_PER_PRODUCER: u64 = 10_000;

fn main() {
    let stm = Arc::new(TvarShortG::new());
    let queue = Arc::new(TxDeque::new(&*stm, 1 << 14));
    let processed_sum = Arc::new(AtomicU64::new(0));
    let processed_count = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::new();

    for p in 0..PRODUCERS {
        let stm = Arc::clone(&stm);
        let queue = Arc::clone(&queue);
        handles.push(std::thread::spawn(move || {
            let mut thread = stm.register();
            for i in 0..JOBS_PER_PRODUCER {
                let job = p as u64 * JOBS_PER_PRODUCER + i;
                while !queue.push_right(job, &mut thread) {
                    std::thread::yield_now();
                }
            }
        }));
    }

    let total_jobs = PRODUCERS as u64 * JOBS_PER_PRODUCER;
    for _ in 0..CONSUMERS {
        let stm = Arc::clone(&stm);
        let queue = Arc::clone(&queue);
        let processed_sum = Arc::clone(&processed_sum);
        let processed_count = Arc::clone(&processed_count);
        handles.push(std::thread::spawn(move || {
            let mut thread = stm.register();
            loop {
                // ORDERING: approximate progress check; exactness is
                // enforced by the checksum after join.
                if processed_count.load(Ordering::Relaxed) >= total_jobs {
                    break;
                }
                match queue.pop_left(&mut thread) {
                    Some(job) => {
                        // ORDERING: test oracle counters, read after join.
                        processed_sum.fetch_add(job, Ordering::Relaxed);
                        processed_count.fetch_add(1, Ordering::Relaxed); // ORDERING: as above
                    }
                    None => std::thread::yield_now(),
                }
            }
        }));
    }

    for h in handles {
        h.join().unwrap();
    }

    let expected: u64 = (0..total_jobs).sum();
    // ORDERING: read after all workers joined; join synchronizes.
    let got = processed_sum.load(Ordering::Relaxed);
    println!("processed {total_jobs} jobs, checksum {got} (expected {expected})");
    assert_eq!(got, expected, "each job must be processed exactly once");
    println!("ok: the transactional deque behaved as a linearizable queue");
}
