//! An ordered in-memory index backed by the STM skip list — the in-memory
//! database index use-case from the paper's introduction.
//!
//! The example bulk-loads an index, runs a mixed workload of point lookups
//! and updates from several threads, and then verifies the index against a
//! reference `BTreeSet`.  It also prints how many operations used the
//! specialized short-transaction fast path versus the ordinary-transaction
//! fallback (towers taller than two levels).
//!
//! Run with: `cargo run --release --example skiplist_index`

use std::collections::BTreeSet;
use std::sync::Arc;

use spectm::variants::ValShort;
use spectm::{Stm, StmThread};
use spectm_ds::{ApiMode, StmSkipList};

const THREADS: usize = 4;
const OPS_PER_THREAD: usize = 15_000;
const KEY_SPACE: u64 = 8_192;

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

fn main() {
    let stm = Arc::new(ValShort::new());
    let index = Arc::new(StmSkipList::new(&*stm, ApiMode::Short));

    // Bulk load: every even key.
    let mut loader = stm.register();
    for key in (2..KEY_SPACE).step_by(2) {
        index.insert(key, &mut loader);
    }
    println!("bulk-loaded {} keys", KEY_SPACE / 2 - 1);

    let mut handles = Vec::new();
    for t in 0..THREADS {
        let stm = Arc::clone(&stm);
        let index = Arc::clone(&index);
        handles.push(std::thread::spawn(move || {
            let mut thread = stm.register();
            let mut state = (t as u64 + 1) * 0x2545_F491;
            let mut journal: Vec<(u64, bool)> = Vec::new();
            for _ in 0..OPS_PER_THREAD {
                let key = 1 + xorshift(&mut state) % KEY_SPACE;
                match xorshift(&mut state) % 10 {
                    0..=6 => {
                        std::hint::black_box(index.contains(key, &mut thread));
                    }
                    7..=8 => {
                        if index.insert(key, &mut thread) {
                            journal.push((key, true));
                        }
                    }
                    _ => {
                        if index.remove(key, &mut thread) {
                            journal.push((key, false));
                        }
                    }
                }
            }
            let stats = thread.stats();
            (journal, stats)
        }));
    }

    let mut balance = vec![0i64; (KEY_SPACE + 1) as usize];
    for key in (2..KEY_SPACE).step_by(2) {
        balance[key as usize] += 1;
    }
    let mut short_commits = 0;
    let mut full_commits = 0;
    for h in handles {
        let (journal, stats) = h.join().unwrap();
        for (key, inserted) in journal {
            balance[key as usize] += if inserted { 1 } else { -1 };
        }
        short_commits += stats.short_rw_commits + stats.singles;
        full_commits += stats.full_commits;
    }

    // Verify against the oracle rebuilt from the journals.
    let mut oracle = BTreeSet::new();
    let mut checker = stm.register();
    for (key, bal) in balance.iter().enumerate().skip(1) {
        assert!((0..=1).contains(bal), "key {key} balance {bal}");
        if *bal == 1 {
            oracle.insert(key as u64);
        }
        assert_eq!(
            index.contains(key as u64, &mut checker),
            *bal == 1,
            "key {key} presence mismatch"
        );
    }
    let snapshot = index.quiescent_snapshot();
    assert_eq!(snapshot, oracle.iter().copied().collect::<Vec<_>>());
    assert!(
        snapshot.windows(2).all(|w| w[0] < w[1]),
        "index stays sorted"
    );

    println!(
        "index verified: {} keys; fast-path commits: {}, ordinary-transaction commits: {}",
        snapshot.len(),
        short_commits,
        full_commits
    );
    println!(
        "(the paper's Section 3 predicts roughly 25% of updates need the ordinary-transaction fallback)"
    );
}
