//! Quickstart: the SpecTM API in five minutes.
//!
//! Shows the three levels of the API on a tiny bank-account example:
//! traditional transactions, specialized short transactions, and
//! single-location operations — all on the same cells.
//!
//! Run with: `cargo run --release --example quickstart`

use spectm::variants::ValShort;
use spectm::{decode_int, encode_int, Stm, StmThread};

fn main() {
    // 1. Create an STM instance.  `ValShort` is the paper's fastest variant:
    //    one lock bit folded into each data word, value-based validation.
    let stm = ValShort::new();

    // 2. Create transactional cells.  The val layout reserves bit 0, so plain
    //    integers are stored through `encode_int` / `decode_int`.
    let checking = stm.new_cell(encode_int(1_000));
    let savings = stm.new_cell(encode_int(250));

    // 3. Register the current thread.
    let mut thread = stm.register();

    // --- Traditional transaction: atomically move money between accounts ---
    let moved = thread
        .atomic(|tx| {
            let c = decode_int(tx.read(&checking)?);
            let s = decode_int(tx.read(&savings)?);
            let amount = 300.min(c);
            tx.write(&checking, encode_int(c - amount))?;
            tx.write(&savings, encode_int(s + amount))?;
            Ok(amount)
        })
        .expect("transfer is never cancelled");
    println!("moved {moved} from checking to savings");

    // --- Specialized short transaction: the same transfer, hand-optimized ---
    loop {
        let c = thread.rw_read(0, &checking);
        let s = thread.rw_read(1, &savings);
        if !thread.rw_is_valid(2) {
            continue; // conflict: restart
        }
        let (c, s) = (decode_int(c), decode_int(s));
        let amount = 100.min(c);
        if thread.rw_commit(2, &[encode_int(c - amount), encode_int(s + amount)]) {
            println!("moved {amount} more with a short transaction");
            break;
        }
    }

    // --- Single-location operations ---
    let balance = decode_int(thread.single_read(&savings));
    println!("savings balance: {balance}");
    assert_eq!(
        decode_int(thread.single_read(&checking)) + balance,
        1_250,
        "money is conserved"
    );

    // Statistics collected by this thread.
    let stats = thread.stats();
    println!(
        "commits: full={} short={} singles={}",
        stats.full_commits, stats.short_rw_commits, stats.singles
    );
}
